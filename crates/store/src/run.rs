//! Immutable sorted-run files: CRC-framed blocks of sorted entries with a sparse
//! first-entry index.
//!
//! A run file is how sealed state leaves memory — a checkpointed input's contents, or
//! a cold spine layer spilled by the trace. The layout (SSTable-style):
//!
//! ```text
//! header:  b"KPGRUN01" ++ u32 version
//! blocks:  [u32 LE block length][u32 LE crc32(block)][entries]*
//!          where entries = ([u32 LE entry length][entry bytes])*
//! index:   u32 count ++ per block { u64 offset, u32 length, u32 entries,
//!                                   u32 first-entry length, first-entry bytes }
//! footer:  u64 index offset ++ u64 total entries ++ u32 crc32(index) ++ b"KPGRUN01"
//! ```
//!
//! Entries are opaque, sorted byte strings supplied by the caller. The caller marks
//! *key boundaries* as it pushes; a block is only ever cut at a key boundary, so a
//! key's entries never span blocks and a reader holding the sparse index (each
//! block's first entry) can binary-search to the one block that can contain a key and
//! stream from there. Blocks and the index carry CRCs; [`RunReader::open`] validates
//! the footer and index eagerly and each block on read, so a damaged run is detected,
//! not misread.

use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::bytes::{get_bytes, get_u32, get_u64, put_u32, put_u64};
use crate::crc::crc32;

const MAGIC: &[u8; 8] = b"KPGRUN01";
const VERSION: u32 = 1;
const FOOTER_LEN: u64 = 8 + 8 + 4 + 8;

/// The default block payload size writers aim for before cutting at the next key
/// boundary.
pub const DEFAULT_BLOCK_BYTES: usize = 32 * 1024;

struct IndexEntry {
    offset: u64,
    length: u32,
    entries: u32,
    first: Vec<u8>,
}

/// What a finished run contains, returned by [`RunWriter::finish`].
pub struct RunMeta {
    /// Total entries written.
    pub entries: u64,
    /// Each block's first entry, in order (the sparse index).
    pub first_entries: Vec<Vec<u8>>,
}

/// Streams sorted entries into a run file. Entries must be pushed in their final
/// (sorted) order; the writer only frames and indexes them.
pub struct RunWriter {
    file: BufWriter<crate::io::File>,
    offset: u64,
    block: Vec<u8>,
    block_entries: u32,
    block_first: Option<Vec<u8>>,
    index: Vec<IndexEntry>,
    block_bytes: usize,
    total: u64,
}

impl RunWriter {
    /// Creates `path` (truncating any existing file) and writes the header. Blocks
    /// are cut at the first key boundary after `block_bytes` of entry payload.
    pub fn create(path: impl AsRef<Path>, block_bytes: usize) -> io::Result<RunWriter> {
        let mut file = BufWriter::new(crate::io::create(path)?);
        file.write_all(MAGIC)?;
        let mut version = Vec::new();
        put_u32(&mut version, VERSION);
        file.write_all(&version)?;
        Ok(RunWriter {
            file,
            offset: MAGIC.len() as u64 + 4,
            block: Vec::new(),
            block_entries: 0,
            block_first: None,
            index: Vec::new(),
            block_bytes: block_bytes.max(1),
            total: 0,
        })
    }

    /// Appends one entry. `key_boundary` marks that this entry starts a new key; the
    /// current block is flushed first if it is over budget (so a key's entries never
    /// span blocks — the first entry pushed must have it set).
    pub fn push(&mut self, entry: &[u8], key_boundary: bool) -> io::Result<()> {
        if key_boundary && self.block.len() >= self.block_bytes {
            self.flush_block()?;
        }
        if self.block_first.is_none() {
            self.block_first = Some(entry.to_vec());
        }
        put_u32(&mut self.block, entry.len() as u32);
        self.block.extend_from_slice(entry);
        self.block_entries += 1;
        self.total += 1;
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let mut header = Vec::new();
        put_u32(&mut header, self.block.len() as u32);
        put_u32(&mut header, crc32(&self.block));
        self.file.write_all(&header)?;
        self.file.write_all(&self.block)?;
        self.index.push(IndexEntry {
            offset: self.offset,
            length: self.block.len() as u32,
            entries: self.block_entries,
            first: self.block_first.take().unwrap_or_default(),
        });
        self.offset += header.len() as u64 + self.block.len() as u64;
        self.block.clear();
        self.block_entries = 0;
        Ok(())
    }

    /// Flushes the final block, writes the index and footer, and fsyncs the file.
    pub fn finish(mut self) -> io::Result<RunMeta> {
        self.flush_block()?;
        let index_offset = self.offset;
        let mut index = Vec::new();
        put_u32(&mut index, self.index.len() as u32);
        for entry in &self.index {
            put_u64(&mut index, entry.offset);
            put_u32(&mut index, entry.length);
            put_u32(&mut index, entry.entries);
            put_u32(&mut index, entry.first.len() as u32);
            index.extend_from_slice(&entry.first);
        }
        self.file.write_all(&index)?;
        let mut footer = Vec::new();
        put_u64(&mut footer, index_offset);
        put_u64(&mut footer, self.total);
        put_u32(&mut footer, crc32(&index));
        footer.extend_from_slice(MAGIC);
        self.file.write_all(&footer)?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(RunMeta {
            entries: self.total,
            first_entries: self.index.into_iter().map(|entry| entry.first).collect(),
        })
    }
}

/// Reads a run file: the index is validated at open, blocks are CRC-checked on read.
pub struct RunReader {
    file: crate::io::File,
    path: PathBuf,
    blocks: Vec<IndexEntry>,
    entries: u64,
}

impl RunReader {
    /// Opens and validates `path` (magic, version, footer, index CRC).
    pub fn open(path: impl AsRef<Path>) -> io::Result<RunReader> {
        let path = path.as_ref().to_path_buf();
        let mut file = crate::io::open_read(&path)?;
        let total_len = file.seek(SeekFrom::End(0))?;
        let corrupt = |message: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {message}", path.display()),
            )
        };
        if total_len < MAGIC.len() as u64 + 4 + FOOTER_LEN {
            return Err(corrupt("file too short for a run"));
        }
        let mut header = [0u8; 12];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if get_u32(&header, &mut 8) != Some(VERSION) {
            return Err(corrupt("unsupported version"));
        }
        let mut footer = vec![0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(total_len - FOOTER_LEN))?;
        file.read_exact(&mut footer)?;
        if &footer[FOOTER_LEN as usize - 8..] != MAGIC {
            return Err(corrupt("bad footer magic"));
        }
        let mut pos = 0usize;
        let index_offset = get_u64(&footer, &mut pos).expect("footer sized");
        let entries = get_u64(&footer, &mut pos).expect("footer sized");
        let index_crc = get_u32(&footer, &mut pos).expect("footer sized");
        if index_offset > total_len - FOOTER_LEN {
            return Err(corrupt("index offset out of bounds"));
        }
        let index_len = (total_len - FOOTER_LEN - index_offset) as usize;
        let mut index = vec![0u8; index_len];
        file.seek(SeekFrom::Start(index_offset))?;
        file.read_exact(&mut index)?;
        if crc32(&index) != index_crc {
            return Err(corrupt("index checksum mismatch"));
        }
        let mut pos = 0usize;
        let count = get_u32(&index, &mut pos).ok_or_else(|| corrupt("index truncated"))?;
        let mut blocks = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let offset = get_u64(&index, &mut pos).ok_or_else(|| corrupt("index truncated"))?;
            let length = get_u32(&index, &mut pos).ok_or_else(|| corrupt("index truncated"))?;
            let block_entries =
                get_u32(&index, &mut pos).ok_or_else(|| corrupt("index truncated"))?;
            let first = get_bytes(&index, &mut pos).ok_or_else(|| corrupt("index truncated"))?;
            blocks.push(IndexEntry {
                offset,
                length,
                entries: block_entries,
                first,
            });
        }
        Ok(RunReader {
            file,
            path,
            blocks,
            entries,
        })
    }

    /// The number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The total number of entries across all blocks.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The first entry of block `index` (the sparse index key).
    pub fn first_entry(&self, index: usize) -> &[u8] {
        &self.blocks[index].first
    }

    /// Reads and CRC-checks block `index`, returning its entries in order.
    pub fn read_block(&mut self, index: usize) -> io::Result<Vec<Vec<u8>>> {
        let corrupt = |path: &Path, message: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {message}", path.display()),
            )
        };
        let block = &self.blocks[index];
        let mut frame = vec![0u8; 8 + block.length as usize];
        self.file.seek(SeekFrom::Start(block.offset))?;
        self.file.read_exact(&mut frame)?;
        let mut pos = 0usize;
        let length = get_u32(&frame, &mut pos).expect("frame sized");
        let expected = get_u32(&frame, &mut pos).expect("frame sized");
        if length != block.length {
            return Err(corrupt(&self.path, "block length disagrees with index"));
        }
        let payload = &frame[pos..];
        if crc32(payload) != expected {
            return Err(corrupt(&self.path, "block checksum mismatch"));
        }
        let mut entries = Vec::with_capacity(block.entries as usize);
        let mut cursor = 0usize;
        while cursor < payload.len() {
            let entry = get_bytes(payload, &mut cursor)
                .ok_or_else(|| corrupt(&self.path, "entry truncated inside block"))?;
            entries.push(entry);
        }
        if entries.len() != block.entries as usize {
            return Err(corrupt(&self.path, "entry count disagrees with index"));
        }
        Ok(entries)
    }

    /// All entries of every block, in order.
    pub fn read_all(&mut self) -> io::Result<Vec<Vec<u8>>> {
        let mut all = Vec::new();
        for index in 0..self.block_count() {
            all.extend(self.read_block(index)?);
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(tag: &str) -> PathBuf {
        use kpg_sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("kpg-run-{tag}-{}-{unique}.run", std::process::id()))
    }

    #[test]
    fn round_trips_with_small_blocks() {
        let path = temp_file("roundtrip");
        let mut writer = RunWriter::create(&path, 32).unwrap();
        let entries: Vec<Vec<u8>> = (0..100u32)
            .map(|key| format!("key-{key:04}").into_bytes())
            .collect();
        for entry in &entries {
            writer.push(entry, true).unwrap();
        }
        let meta = writer.finish().unwrap();
        assert_eq!(meta.entries, 100);
        assert!(meta.first_entries.len() > 1, "expected multiple blocks");
        let mut reader = RunReader::open(&path).unwrap();
        assert_eq!(reader.entries(), 100);
        assert_eq!(reader.block_count(), meta.first_entries.len());
        for (index, first) in meta.first_entries.iter().enumerate() {
            assert_eq!(reader.first_entry(index), &first[..]);
        }
        assert_eq!(reader.read_all().unwrap(), entries);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn key_boundaries_hold_keys_together() {
        let path = temp_file("boundaries");
        let mut writer = RunWriter::create(&path, 16).unwrap();
        // 10 keys, 5 entries each; only the first entry of a key is a boundary.
        for key in 0..10u32 {
            for entry in 0..5u32 {
                let bytes = format!("{key:03}/{entry}").into_bytes();
                writer.push(&bytes, entry == 0).unwrap();
            }
        }
        let meta = writer.finish().unwrap();
        // Every block must start at a key boundary (entry suffix "/0").
        for first in &meta.first_entries {
            assert!(first.ends_with(b"/0"), "block split a key: {first:?}");
        }
        let mut reader = RunReader::open(&path).unwrap();
        assert_eq!(reader.read_all().unwrap().len(), 50);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn damage_is_detected() {
        let path = temp_file("damage");
        let mut writer = RunWriter::create(&path, 64).unwrap();
        for key in 0..50u32 {
            writer.push(&key.to_le_bytes(), true).unwrap();
        }
        writer.finish().unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // Flip one byte somewhere in the middle (block payload) and at the end
        // (index/footer): either open or the block read must error.
        for position in [pristine.len() / 2, pristine.len() - 10] {
            let mut corrupt = pristine.clone();
            corrupt[position] ^= 0x10;
            std::fs::write(&path, &corrupt).unwrap();
            let failed = match RunReader::open(&path) {
                Err(_) => true,
                Ok(mut reader) => {
                    (0..reader.block_count()).any(|index| reader.read_block(index).is_err())
                }
            };
            assert!(failed, "corruption at byte {position} went undetected");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_run_round_trips() {
        let path = temp_file("empty");
        let writer = RunWriter::create(&path, 64).unwrap();
        let meta = writer.finish().unwrap();
        assert_eq!(meta.entries, 0);
        let mut reader = RunReader::open(&path).unwrap();
        assert_eq!(reader.block_count(), 0);
        assert!(reader.read_all().unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
