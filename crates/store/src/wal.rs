//! The segmented write-ahead log.
//!
//! A WAL is a directory of segment files, each a concatenation of records framed as
//!
//! ```text
//! [u32 LE payload length][u32 LE crc32(payload)][payload = u64 LE sequence ++ body]
//! ```
//!
//! Segments are named `wal-<first-sequence:016x>.log`, so the directory listing alone
//! orders them and bounds each one's contents (every record in a segment has a
//! sequence below the next segment's first). Appends go through a [`WalBatch`] — a
//! last-writes staging map in the style of sovereign-sdk's `SchemaBatch` — committed
//! as one contiguous write under the caller's lock; [`Wal::sync`] is the group-commit
//! fsync the caller issues at its durability points (the server syncs on epoch
//! advances, so an acknowledged `AdvanceTime` implies everything before it is on
//! disk).
//!
//! Recovery ([`Wal::open`]) is *total*: it decodes every segment in order and treats
//! the first record that fails its length or CRC check as the start of a torn tail —
//! the file is truncated there, any later segments are discarded, and the intact
//! prefix is returned. A crash mid-append therefore costs at most the unacknowledged
//! suffix, never a panic and never a misparse.
//!
//! Failed appends are recoverable *in place*: the log remembers the byte length of
//! its last successful sync, a failed write or fsync marks it **tainted**, and
//! [`Wal::repair`] truncates the active segment back to the synced prefix — so a
//! caller that kept its batch staged can simply retry `commit` + `sync` without ever
//! duplicating a record. `commit` and `sync` repair automatically when needed; all
//! file operations route through the [`crate::io`] seam, so every one of these
//! failure paths is reachable deterministically under `--features faults`.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::bytes::{get_u32, get_u64, put_u32, put_u64};
use crate::crc::crc32;

/// A staged set of records awaiting one atomic append, with last-writes semantics:
/// staging a sequence number twice keeps only the final payload, so a caller can
/// revise a record up until commit (the `SchemaBatch` idiom).
#[derive(Default)]
pub struct WalBatch {
    entries: BTreeMap<u64, Vec<u8>>,
}

impl WalBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WalBatch::default()
    }

    /// Stages `payload` under `seq`, replacing any earlier staging of the same
    /// sequence (last write wins).
    pub fn put(&mut self, seq: u64, payload: Vec<u8>) {
        self.entries.insert(seq, payload);
    }

    /// Unstages `seq`, returning its payload if it was staged. Callers use this to
    /// withdraw a record whose commit was refused (the server unstages an epoch
    /// advance it could not make durable).
    pub fn remove(&mut self, seq: u64) -> Option<Vec<u8>> {
        self.entries.remove(&seq)
    }

    /// The number of staged records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One recovered record: its sequence number and body (the payload minus the
/// sequence prefix).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's sequence number.
    pub seq: u64,
    /// The caller's body bytes.
    pub body: Vec<u8>,
}

/// The segmented write-ahead log. See the module docs for the format.
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    /// Segment first-sequences, oldest first; the last is the active segment.
    segments: Vec<u64>,
    active: crate::io::File,
    active_len: u64,
    active_records: u64,
    /// Length/record count of the active segment at the last successful sync — the
    /// truncation point [`Wal::repair`] rolls back to.
    synced_len: u64,
    synced_records: u64,
    /// Set when a write or sync failed and the active segment may hold a torn or
    /// unsynced suffix; cleared by [`Wal::repair`].
    tainted: bool,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:016x}.log"))
}

fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut firsts = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("wal-")
            .and_then(|n| n.strip_suffix(".log"))
        {
            if let Ok(first) = u64::from_str_radix(hex, 16) {
                firsts.push(first);
            }
        }
    }
    firsts.sort_unstable();
    Ok(firsts)
}

/// Decodes `contents` as a record stream. Returns the records of the longest valid
/// prefix and the byte length of that prefix (`== contents.len()` iff nothing was
/// torn or corrupt).
fn decode_segment(contents: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let mut cursor = pos;
        let Some(length) = get_u32(contents, &mut cursor) else {
            break;
        };
        let Some(expected) = get_u32(contents, &mut cursor) else {
            break;
        };
        let Some(payload) = contents.get(cursor..cursor + length as usize) else {
            break;
        };
        if crc32(payload) != expected {
            break;
        }
        let mut body_pos = 0usize;
        let Some(seq) = get_u64(payload, &mut body_pos) else {
            break;
        };
        records.push(WalRecord {
            seq,
            body: payload[body_pos..].to_vec(),
        });
        pos = cursor + length as usize;
    }
    (records, pos)
}

impl Wal {
    /// Opens (creating if needed) the WAL in `dir`, recovering the longest valid
    /// record prefix. Torn or corrupt tails are truncated on disk: the first record
    /// that fails its frame or CRC check, and everything after it (including later
    /// segments), is discarded. Segments rotate once they exceed `segment_bytes`.
    pub fn open(dir: impl Into<PathBuf>, segment_bytes: u64) -> io::Result<(Wal, Vec<WalRecord>)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        let mut records = Vec::new();
        let mut truncate_from: Option<usize> = None;
        for (index, first) in segments.iter().enumerate() {
            let path = segment_path(&dir, *first);
            let contents = crate::io::read(&path)?;
            let (mut segment_records, valid_len) = decode_segment(&contents);
            records.append(&mut segment_records);
            if valid_len < contents.len() {
                // Torn tail: truncate this segment to its valid prefix and drop every
                // later segment — records past a tear are unreachable by definition
                // (recovery is a prefix), keeping them would only confuse the next
                // recovery.
                let file = crate::io::open_write(&path)?;
                file.set_len(valid_len as u64)?;
                file.sync_all()?;
                truncate_from = Some(index + 1);
                break;
            }
        }
        if let Some(from) = truncate_from {
            for first in segments.drain(from..) {
                crate::io::remove_file(segment_path(&dir, first))?;
            }
        }
        if segments.is_empty() {
            let first = records.last().map(|record| record.seq + 1).unwrap_or(0);
            crate::io::create(segment_path(&dir, first))?.sync_all()?;
            crate::io::sync_dir(&dir)?;
            segments.push(first);
        }
        let active_path = segment_path(&dir, *segments.last().expect("at least one segment"));
        let mut file = crate::io::open_append(&active_path)?;
        let active_len = file.seek(SeekFrom::End(0))?;
        let active_records = {
            let contents = crate::io::read(&active_path)?;
            decode_segment(&contents).0.len() as u64
        };
        Ok((
            Wal {
                dir,
                segment_bytes,
                segments,
                active: file,
                active_len,
                active_records,
                synced_len: active_len,
                synced_records: active_records,
                tainted: false,
            },
            records,
        ))
    }

    /// Appends every staged record (ascending sequence) as one contiguous write,
    /// rotating to a fresh segment first if the active one is over its size budget.
    /// Durability requires a subsequent [`Wal::sync`].
    ///
    /// If an earlier append or sync failed, the log is repaired first (see
    /// [`Wal::repair`]); on failure the log is marked tainted and the batch stays
    /// the caller's to retry — re-committing the same batch after a failure never
    /// duplicates records.
    pub fn commit(&mut self, batch: &WalBatch) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.repair()?;
        if self.active_len >= self.segment_bytes && self.active_records > 0 {
            let first = *batch.entries.keys().next().expect("non-empty batch");
            self.rotate(first)?;
        }
        let mut buffer = Vec::new();
        for (seq, body) in &batch.entries {
            let mut payload = Vec::with_capacity(8 + body.len());
            put_u64(&mut payload, *seq);
            payload.extend_from_slice(body);
            put_u32(&mut buffer, payload.len() as u32);
            put_u32(&mut buffer, crc32(&payload));
            buffer.extend_from_slice(&payload);
        }
        match self.active.write_all(&buffer) {
            Ok(()) => {
                self.active_len += buffer.len() as u64;
                self.active_records += batch.len() as u64;
                Ok(())
            }
            Err(error) => {
                // An unknown prefix of `buffer` may be on disk; roll back to the
                // synced prefix before the next append.
                self.tainted = true;
                Err(error)
            }
        }
    }

    /// Appends one record; see [`Wal::commit`].
    pub fn append(&mut self, seq: u64, body: Vec<u8>) -> io::Result<()> {
        let mut batch = WalBatch::new();
        batch.put(seq, body);
        self.commit(&batch)
    }

    /// Fsyncs the active segment — the group-commit point: every record committed
    /// before this call is durable once it returns. Repairs a tainted log first,
    /// which discards committed-but-unsynced records (the caller retries them by
    /// re-committing its staged batch).
    pub fn sync(&mut self) -> io::Result<()> {
        self.repair()?;
        match self.active.sync_data() {
            Ok(()) => {
                self.synced_len = self.active_len;
                self.synced_records = self.active_records;
                Ok(())
            }
            Err(error) => {
                self.tainted = true;
                Err(error)
            }
        }
    }

    /// Rolls a tainted active segment back to its last synced prefix, making retry
    /// idempotent: everything after the last successful [`Wal::sync`] is discarded
    /// (those records were never acknowledged durable). No-op on a healthy log.
    /// The truncation's durability rides on the next successful sync.
    pub fn repair(&mut self) -> io::Result<()> {
        if !self.tainted {
            return Ok(());
        }
        self.active.set_len(self.synced_len)?;
        self.active_len = self.synced_len;
        self.active_records = self.synced_records;
        self.tainted = false;
        Ok(())
    }

    /// True if a failed append/sync left the active segment needing [`Wal::repair`]
    /// (which `commit` and `sync` perform automatically on their next call).
    pub fn is_tainted(&self) -> bool {
        self.tainted
    }

    /// Records in the active segment made durable by the last successful sync.
    pub fn synced_records(&self) -> u64 {
        self.synced_records
    }

    fn rotate(&mut self, first_seq: u64) -> io::Result<()> {
        self.sync()?;
        let path = segment_path(&self.dir, first_seq);
        let file = crate::io::create(&path)?;
        file.sync_all()?;
        crate::io::sync_dir(&self.dir)?;
        self.segments.push(first_seq);
        self.active = crate::io::open_append(&path)?;
        self.active_len = 0;
        self.active_records = 0;
        self.synced_len = 0;
        self.synced_records = 0;
        Ok(())
    }

    /// Deletes every segment whose records all have sequence numbers below `seq`
    /// (checkpoint truncation). The active segment is never deleted. Returns how many
    /// segments were removed. The file is unlinked before it is forgotten, so a
    /// failed removal leaves the in-memory segment list agreeing with the directory
    /// and the prune safe to retry.
    pub fn prune_below(&mut self, seq: u64) -> io::Result<usize> {
        let mut removed = 0;
        while self.segments.len() >= 2 && self.segments[1] <= seq {
            crate::io::remove_file(segment_path(&self.dir, self.segments[0]))?;
            self.segments.remove(0);
            removed += 1;
        }
        if removed > 0 {
            crate::io::sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// The number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use kpg_sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("kpg-wal-{tag}-{}-{unique}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn bodies(records: &[WalRecord]) -> Vec<(u64, Vec<u8>)> {
        records
            .iter()
            .map(|record| (record.seq, record.body.clone()))
            .collect()
    }

    #[test]
    fn append_sync_recover_round_trip() {
        let dir = temp_dir("roundtrip");
        {
            let (mut wal, recovered) = Wal::open(&dir, 1 << 20).unwrap();
            assert!(recovered.is_empty());
            wal.append(0, b"alpha".to_vec()).unwrap();
            wal.append(1, b"beta".to_vec()).unwrap();
            let mut batch = WalBatch::new();
            batch.put(2, b"stale".to_vec());
            batch.put(3, b"delta".to_vec());
            batch.put(2, b"gamma".to_vec()); // last write wins
            wal.commit(&batch).unwrap();
            wal.sync().unwrap();
        }
        let (_wal, recovered) = Wal::open(&dir, 1 << 20).unwrap();
        assert_eq!(
            bodies(&recovered),
            vec![
                (0, b"alpha".to_vec()),
                (1, b"beta".to_vec()),
                (2, b"gamma".to_vec()),
                (3, b"delta".to_vec()),
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The torn-write harness the durability issue demands: truncate the log at every
    /// byte boundary of the final record; recovery must never fail, always yielding
    /// the longest intact prefix.
    #[test]
    fn truncation_at_every_byte_recovers_the_prefix() {
        let dir = temp_dir("torn");
        let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
        wal.append(0, b"first-record".to_vec()).unwrap();
        wal.sync().unwrap();
        let keep = fs::read(segment_path(&dir, 0)).unwrap().len() as u64;
        wal.append(1, b"second-record-possibly-torn".to_vec())
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let full = fs::read(segment_path(&dir, 0)).unwrap();
        for cut in keep as usize..full.len() {
            let case = temp_dir("torn-case");
            fs::create_dir_all(&case).unwrap();
            fs::write(segment_path(&case, 0), &full[..cut]).unwrap();
            let (_wal, recovered) = Wal::open(&case, 1 << 20).unwrap();
            if cut == full.len() {
                assert_eq!(recovered.len(), 2);
            } else {
                assert_eq!(
                    bodies(&recovered),
                    vec![(0, b"first-record".to_vec())],
                    "cut at byte {cut}"
                );
                // Recovery repairs the file: a second recovery sees a clean log.
                assert_eq!(fs::read(segment_path(&case, 0)).unwrap().len() as u64, keep);
            }
            fs::remove_dir_all(&case).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Bit-flip every byte of the last record: the CRC must catch it and recovery
    /// must fall back to the prefix before the record.
    #[test]
    fn bit_flips_in_the_tail_are_detected() {
        let dir = temp_dir("flip");
        let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
        wal.append(0, b"keep-me".to_vec()).unwrap();
        wal.sync().unwrap();
        let keep = fs::read(segment_path(&dir, 0)).unwrap().len();
        wal.append(1, b"flip-me".to_vec()).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let full = fs::read(segment_path(&dir, 0)).unwrap();
        for byte in keep..full.len() {
            let case = temp_dir("flip-case");
            fs::create_dir_all(&case).unwrap();
            let mut corrupt = full.clone();
            corrupt[byte] ^= 0x40;
            fs::write(segment_path(&case, 0), &corrupt).unwrap();
            let (_wal, recovered) = Wal::open(&case, 1 << 20).unwrap();
            // A flip in the length prefix can make the record unreadable in several
            // ways (oversized, short, CRC mismatch); whatever the failure mode, the
            // intact first record must survive and the flipped one must not.
            assert_eq!(
                bodies(&recovered),
                vec![(0, b"keep-me".to_vec())],
                "flip at {byte}"
            );
            fs::remove_dir_all(&case).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_pruning_drop_whole_segments() {
        let dir = temp_dir("rotate");
        let (mut wal, _) = Wal::open(&dir, 64).unwrap();
        for seq in 0..32u64 {
            wal.append(seq, vec![seq as u8; 24]).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 2, "expected rotation to occur");
        let before = wal.segment_count();
        // Pruning below 16 may drop only segments wholly below it.
        wal.prune_below(16).unwrap();
        assert!(wal.segment_count() < before);
        drop(wal);
        let (_wal, recovered) = Wal::open(&dir, 64).unwrap();
        let seqs: Vec<u64> = recovered.iter().map(|record| record.seq).collect();
        // Everything at or above the prune point survives, contiguously, through 31.
        assert!(seqs.contains(&16) && seqs.contains(&31));
        let first = seqs[0];
        assert!(first <= 16);
        assert_eq!(seqs, (first..32).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A tear in a non-final segment orphans the later segments; recovery keeps the
    /// prefix and removes them so the next recovery is clean.
    #[test]
    fn corruption_in_an_early_segment_discards_later_ones() {
        let dir = temp_dir("early");
        let (mut wal, _) = Wal::open(&dir, 48).unwrap();
        for seq in 0..12u64 {
            wal.append(seq, vec![seq as u8; 16]).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() >= 2);
        drop(wal);
        let first_path = segment_path(&dir, 0);
        let mut contents = fs::read(&first_path).unwrap();
        let cut = contents.len() - 3;
        contents.truncate(cut);
        fs::write(&first_path, &contents).unwrap();
        let (wal, recovered) = Wal::open(&dir, 48).unwrap();
        assert!(!recovered.is_empty());
        assert!(recovered.iter().all(|record| record.seq < 12));
        let seqs: Vec<u64> = recovered.iter().map(|record| record.seq).collect();
        assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
        assert_eq!(wal.segment_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
