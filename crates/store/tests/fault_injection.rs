//! Deterministic fault-injection tests for the storage layer (`--features faults`).
//!
//! Each test installs a [`FaultPlan`] scoped to its own temp directory (so parallel
//! tests never observe each other's faults) and drives a WAL, run file, or manifest
//! through the injected failure, asserting the layer's documented contract: errors
//! are returned (never panics), retry after [`Wal::repair`] is idempotent, and a
//! torn manifest commit leaves the previous manifest in force.

#![cfg(feature = "faults")]

use std::io::ErrorKind;
use std::path::PathBuf;

use kpg_store::io::faults::{FaultEffect, FaultPlan};
use kpg_store::io::OpKind;
use kpg_store::{classify, FaultClass, Manifest, RunReader, RunWriter, Wal, WalBatch};

fn temp_dir(tag: &str) -> PathBuf {
    use kpg_sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("kpg-faults-{tag}-{}-{unique}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn recovered_seqs(dir: &PathBuf) -> Vec<u64> {
    let (_wal, records) = Wal::open(dir, 1 << 20).unwrap();
    records.into_iter().map(|record| record.seq).collect()
}

#[test]
fn plan_grammar_round_trips() {
    let text = "fsync%wal-@2..5=eio;write@1=short:7;rename@3..=enospc;budget:4096;trace";
    let plan = FaultPlan::parse(text).unwrap();
    assert_eq!(plan.specs.len(), 3);
    assert_eq!(plan.specs[0].kind, OpKind::Fsync);
    assert_eq!(plan.specs[0].filter.as_deref(), Some("wal-"));
    assert_eq!((plan.specs[0].from, plan.specs[0].to), (2, Some(5)));
    assert_eq!(plan.specs[1].effect, FaultEffect::Short(7));
    assert_eq!((plan.specs[1].from, plan.specs[1].to), (1, Some(2)));
    assert_eq!(plan.specs[2].to, None);
    assert_eq!(plan.write_budget, Some(4096));
    assert!(plan.trace);
    assert_eq!(plan.to_string(), text);
    // Re-parsing the display form is a fixed point.
    assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
}

#[test]
fn plan_grammar_rejects_nonsense() {
    for bad in [
        "fsync@1",         // missing effect
        "fsync=eio",       // missing occurrence
        "fsync@0=eio",     // occurrences are 1-based
        "chmod@1=eio",     // unknown kind
        "fsync@1=explode", // unknown effect
        "write@1=short:x", // bad short length
        "budget:lots",     // bad budget
    ] {
        assert!(FaultPlan::parse(bad).is_err(), "{bad:?} parsed");
    }
}

#[test]
fn plans_are_scoped_to_their_path_prefix() {
    let dir_a = temp_dir("scope-a");
    let dir_b = temp_dir("scope-b");
    let (mut wal_a, _) = Wal::open(&dir_a, 1 << 20).unwrap();
    let (mut wal_b, _) = Wal::open(&dir_b, 1 << 20).unwrap();
    let guard = FaultPlan::parse("fsync@1..=eio")
        .unwrap()
        .scoped(&dir_a)
        .install();
    wal_a.append(0, b"a".to_vec()).unwrap();
    wal_b.append(0, b"b".to_vec()).unwrap();
    assert!(wal_a.sync().is_err(), "scoped fault must fire in dir_a");
    wal_b
        .sync()
        .expect("dir_b must be outside the plan's scope");
    assert!(guard.op_count(OpKind::Fsync) >= 1);
    drop(guard);
    // With the guard dropped the fault is gone.
    wal_a.append(1, b"a2".to_vec()).unwrap();
    wal_a.sync().unwrap();
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

/// A failed group-commit fsync, retried by re-committing the same staged batch,
/// must recover exactly one copy of each record (the repair contract).
#[test]
fn wal_retry_after_failed_fsync_never_duplicates() {
    let dir = temp_dir("wal-fsync");
    let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
    let guard = FaultPlan::parse("fsync@1=eio")
        .unwrap()
        .scoped(&dir)
        .install();
    let mut batch = WalBatch::new();
    batch.put(0, b"zero".to_vec());
    batch.put(1, b"one".to_vec());
    wal.commit(&batch).unwrap();
    let error = wal.sync().unwrap_err();
    assert_eq!(classify(&error), FaultClass::Transient);
    assert!(wal.is_tainted());
    // The caller's retry protocol: the batch is still staged, so commit + sync again.
    wal.commit(&batch).unwrap();
    wal.sync().unwrap();
    assert!(!wal.is_tainted());
    assert_eq!(wal.synced_records(), 2);
    drop(guard);
    drop(wal);
    assert_eq!(recovered_seqs(&dir), vec![0, 1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A short write tears the record mid-frame; repair truncates the torn suffix and
/// the retried commit lands cleanly.
#[test]
fn wal_retry_after_short_write_never_duplicates() {
    let dir = temp_dir("wal-short");
    let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
    let guard = FaultPlan::parse("write@1=short:3")
        .unwrap()
        .scoped(&dir)
        .install();
    let mut batch = WalBatch::new();
    batch.put(7, b"torn-then-whole".to_vec());
    assert!(wal.commit(&batch).is_err());
    assert!(wal.is_tainted());
    wal.commit(&batch).unwrap();
    wal.sync().unwrap();
    drop(guard);
    drop(wal);
    assert_eq!(recovered_seqs(&dir), vec![7]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Even with the fault still active, a tainted WAL whose every retry fails keeps
/// returning errors — and once the fault clears, recovery yields only synced
/// records, with the torn suffix gone.
#[test]
fn wal_permanent_fault_then_clear_recovers_synced_prefix_only() {
    let dir = temp_dir("wal-perm");
    let (mut wal, _) = Wal::open(&dir, 1 << 20).unwrap();
    wal.append(0, b"durable".to_vec()).unwrap();
    wal.sync().unwrap();
    let guard = FaultPlan::parse("fsync@1..=eio")
        .unwrap()
        .scoped(&dir)
        .install();
    let mut batch = WalBatch::new();
    batch.put(1, b"never-synced".to_vec());
    for _ in 0..3 {
        wal.commit(&batch).unwrap();
        assert!(wal.sync().is_err());
    }
    drop(guard); // fault clears
    wal.commit(&batch).unwrap();
    wal.sync().unwrap();
    drop(wal);
    assert_eq!(recovered_seqs(&dir), vec![0, 1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// ENOSPC via the cumulative write budget surfaces from `RunWriter` as a fatal
/// `StorageFull` error, not a panic, whether it bites at `push` or `finish`.
#[test]
fn run_writer_surfaces_enospc_from_the_write_budget() {
    let dir = temp_dir("run-enospc");
    let path = dir.join("out.run");
    let guard = FaultPlan::new()
        .with_write_budget(64)
        .scoped(&dir)
        .install();
    let mut writer = RunWriter::create(&path, 16).unwrap();
    let mut failed = None;
    for key in 0..64u32 {
        if let Err(error) = writer.push(format!("key-{key:04}").as_bytes(), true) {
            failed = Some(error);
            break;
        }
    }
    let error = match failed {
        Some(error) => error,
        None => match writer.finish() {
            Err(error) => error,
            Ok(_) => panic!("budget must bite by finish"),
        },
    };
    assert_eq!(error.kind(), ErrorKind::StorageFull);
    assert_eq!(classify(&error), FaultClass::Fatal);
    drop(guard);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A short write during `finish` leaves a torn run file; the reader must refuse it
/// rather than misread it.
#[test]
fn run_short_write_during_finish_is_detected_on_read() {
    let dir = temp_dir("run-short");
    let path = dir.join("out.run");
    let mut writer = RunWriter::create(&path, 32).unwrap();
    for key in 0..20u32 {
        writer
            .push(format!("key-{key:04}").as_bytes(), true)
            .unwrap();
    }
    let guard = FaultPlan::parse("write@1=short:10")
        .unwrap()
        .scoped(&dir)
        .install();
    assert!(
        writer.finish().is_err(),
        "finish must surface the torn write"
    );
    drop(guard);
    // Whatever prefix made it to disk must not open as a valid run.
    assert!(RunReader::open(&path).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Injected read errors surface as errors from block reads, not panics or bad data.
#[test]
fn run_reader_surfaces_injected_read_errors() {
    let dir = temp_dir("run-read");
    let path = dir.join("out.run");
    let mut writer = RunWriter::create(&path, 32).unwrap();
    for key in 0..20u32 {
        writer
            .push(format!("key-{key:04}").as_bytes(), true)
            .unwrap();
    }
    writer.finish().unwrap();
    let mut reader = RunReader::open(&path).unwrap();
    let guard = FaultPlan::parse("read@1..=eio")
        .unwrap()
        .scoped(&dir)
        .install();
    assert!(reader.read_block(0).is_err());
    drop(guard);
    assert!(!reader.read_block(0).unwrap().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The manifest rename is the commit point: failing it must leave the previous
/// manifest in force and the next commit must succeed cleanly.
#[test]
fn manifest_rename_failure_leaves_previous_manifest_in_force() {
    let dir = temp_dir("manifest-rename");
    let old = Manifest {
        epoch: 1,
        wal_watermark: 10,
        records: vec![("input".to_string(), b"edges".to_vec())],
    };
    old.commit(&dir).unwrap();
    let mut new = old.clone();
    new.epoch = 2;
    let guard = FaultPlan::parse("rename@1=eio")
        .unwrap()
        .scoped(&dir)
        .install();
    assert!(new.commit(&dir).is_err());
    drop(guard);
    assert_eq!(Manifest::load(&dir).unwrap(), Some(old));
    new.commit(&dir).unwrap();
    assert_eq!(Manifest::load(&dir).unwrap().unwrap().epoch, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A torn (short) write of the manifest temp file never reaches the rename, so the
/// previous manifest stays in force and the torn temp is ignored by `load`.
#[test]
fn manifest_short_write_is_not_a_commit() {
    let dir = temp_dir("manifest-short");
    let old = Manifest {
        epoch: 5,
        wal_watermark: 50,
        records: vec![],
    };
    old.commit(&dir).unwrap();
    let mut new = old.clone();
    new.epoch = 6;
    let guard = FaultPlan::parse("write@1=short:4")
        .unwrap()
        .scoped(&dir)
        .install();
    assert!(new.commit(&dir).is_err());
    drop(guard);
    assert_eq!(Manifest::load(&dir).unwrap(), Some(old));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// ENOSPC while writing the manifest body is fatal and not a commit.
#[test]
fn manifest_enospc_is_fatal_and_not_a_commit() {
    let dir = temp_dir("manifest-enospc");
    let old = Manifest {
        epoch: 3,
        wal_watermark: 30,
        records: vec![],
    };
    old.commit(&dir).unwrap();
    let mut new = old.clone();
    new.epoch = 4;
    let guard = FaultPlan::parse("write@1..=enospc")
        .unwrap()
        .scoped(&dir)
        .install();
    let error = new.commit(&dir).unwrap_err();
    assert_eq!(classify(&error), FaultClass::Fatal);
    drop(guard);
    assert_eq!(Manifest::load(&dir).unwrap(), Some(old));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A failed segment removal during pruning keeps the in-memory segment list in
/// agreement with the directory, and the prune succeeds on retry.
#[test]
fn wal_prune_failure_is_retryable() {
    let dir = temp_dir("wal-prune");
    let (mut wal, _) = Wal::open(&dir, 64).unwrap();
    for seq in 0..32u64 {
        wal.append(seq, vec![seq as u8; 24]).unwrap();
    }
    wal.sync().unwrap();
    let before = wal.segment_count();
    assert!(before > 2);
    let guard = FaultPlan::parse("remove@1=eio")
        .unwrap()
        .scoped(&dir)
        .install();
    assert!(wal.prune_below(16).is_err());
    // Nothing was forgotten that is still on disk: a retry removes what the failed
    // call could not, and recovery still sees everything at or above the watermark.
    let removed = wal.prune_below(16).unwrap();
    assert!(removed > 0);
    drop(guard);
    drop(wal);
    let seqs = recovered_seqs(&dir);
    assert!(seqs.contains(&16) && seqs.contains(&31));
    assert_eq!(seqs[seqs.len() - 1], 31);
    std::fs::remove_dir_all(&dir).unwrap();
}
