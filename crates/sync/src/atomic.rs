//! The atomics facade.
//!
//! Each operation is a scheduling point under a model run (an atomic is exactly the
//! kind of shared state whose interleavings the model must explore) and a plain
//! `#[inline]` passthrough otherwise. Orderings are forwarded verbatim: the model
//! serializes threads, so every modeled execution is sequentially consistent — a
//! superset of what any weaker ordering permits, which keeps modeled behaviors a
//! subset of real ones.

pub use std::sync::atomic::Ordering;

macro_rules! atomic_common {
    ($name:ident, $std:ty, $value:ty) => {
        /// Creates a new atomic. `const`, so statics work exactly as with std.
        pub const fn new(value: $value) -> Self {
            $name {
                inner: <$std>::new(value),
            }
        }

        /// Loads the value.
        #[inline]
        pub fn load(&self, order: Ordering) -> $value {
            crate::model_yield();
            self.inner.load(order)
        }

        /// Stores a value.
        #[inline]
        pub fn store(&self, value: $value, order: Ordering) {
            crate::model_yield();
            self.inner.store(value, order);
        }

        /// Swaps in a new value, returning the previous one.
        #[inline]
        pub fn swap(&self, value: $value, order: Ordering) -> $value {
            crate::model_yield();
            self.inner.swap(value, order)
        }

        /// Stores `new` if the current value equals `current`.
        #[inline]
        pub fn compare_exchange(
            &self,
            current: $value,
            new: $value,
            success: Ordering,
            failure: Ordering,
        ) -> Result<$value, $value> {
            crate::model_yield();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Like [`Self::compare_exchange`], but allowed to fail spuriously. (The
        /// facade forwards to the non-weak form: spurious failure is a behavior the
        /// model cannot reproduce deterministically, and callers must tolerate
        /// either.)
        #[inline]
        pub fn compare_exchange_weak(
            &self,
            current: $value,
            new: $value,
            success: Ordering,
            failure: Ordering,
        ) -> Result<$value, $value> {
            crate::model_yield();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Mutable access without synchronization (the `&mut` proves exclusivity).
        #[inline]
        pub fn get_mut(&mut self) -> &mut $value {
            self.inner.get_mut()
        }

        /// Consumes the atomic, returning the value.
        #[inline]
        pub fn into_inner(self) -> $value {
            self.inner.into_inner()
        }
    };
}

macro_rules! atomic_int {
    ($name:ident, $std:ty, $value:ty) => {
        /// A drop-in counterpart of the std atomic of the same name; every operation
        /// is a model scheduling point.
        #[derive(Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            atomic_common!($name, $std, $value);

            /// Adds, wrapping, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                crate::model_yield();
                self.inner.fetch_add(value, order)
            }

            /// Subtracts, wrapping, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, value: $value, order: Ordering) -> $value {
                crate::model_yield();
                self.inner.fetch_sub(value, order)
            }

            /// Stores the maximum of the current and given values, returning the
            /// previous value.
            #[inline]
            pub fn fetch_max(&self, value: $value, order: Ordering) -> $value {
                crate::model_yield();
                self.inner.fetch_max(value, order)
            }

            /// Stores the minimum of the current and given values, returning the
            /// previous value.
            #[inline]
            pub fn fetch_min(&self, value: $value, order: Ordering) -> $value {
                crate::model_yield();
                self.inner.fetch_min(value, order)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl From<$value> for $name {
            fn from(value: $value) -> Self {
                Self::new(value)
            }
        }
    };
}

atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64);
atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);

/// A drop-in `std::sync::atomic::AtomicBool`; every operation is a model scheduling
/// point.
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    atomic_common!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    /// Logical OR, returning the previous value.
    #[inline]
    pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
        crate::model_yield();
        self.inner.fetch_or(value, order)
    }

    /// Logical AND, returning the previous value.
    #[inline]
    pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
        crate::model_yield();
        self.inner.fetch_and(value, order)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl From<bool> for AtomicBool {
    fn from(value: bool) -> Self {
        Self::new(value)
    }
}
