//! The barrier facade.

/// Result of [`Barrier::wait`]: exactly one arriving thread per generation is the
/// leader. (Our own type so the model scheduler can elect the leader itself.)
#[derive(Clone, Copy, Debug)]
pub struct BarrierWaitResult {
    is_leader: bool,
}

impl BarrierWaitResult {
    /// Whether this thread was the generation's leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }
}

/// A drop-in `std::sync::Barrier`. Under a model run, the first `n - 1` arrivals
/// block in the scheduler and the `n`-th (the leader) releases the generation —
/// deterministically, with no kernel synchronization.
pub struct Barrier {
    inner: std::sync::Barrier,
    #[cfg(feature = "model")]
    n: usize,
}

impl Barrier {
    /// Creates a barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        Barrier {
            inner: std::sync::Barrier::new(n),
            #[cfg(feature = "model")]
            n,
        }
    }

    /// Blocks until all `n` threads have arrived.
    pub fn wait(&self) -> BarrierWaitResult {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            let id = std::ptr::from_ref(&self.inner) as usize;
            let is_leader = scheduler.barrier_wait(id, self.n);
            return BarrierWaitResult { is_leader };
        }
        let result = self.inner.wait();
        BarrierWaitResult {
            is_leader: result.is_leader(),
        }
    }
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Barrier").finish_non_exhaustive()
    }
}
