//! Blocking-syscall-under-lock analysis (debug builds).
//!
//! Holding a lock across a blocking syscall (fsync, socket IO) turns one thread's
//! kernel wait into every contender's wait, and is almost always an accident. Sites
//! that perform such syscalls call [`annotate`]; in debug builds it panics if the
//! calling thread holds a tracked lock, unless the call is inside an
//! [`allow_blocking`] scope — the opt-in for protocols where blocking under the lock
//! *is* the design (the server's group-commit fsync under the sequencing lock: WAL
//! order must equal log order, so the fsync cannot move outside it).

use std::cell::Cell;

thread_local! {
    static ALLOW: Cell<u32> = const { Cell::new(0) };
}

/// Marks a scope where blocking under a tracked lock is deliberate. The `reason` is
/// not recorded — it exists to force the call site to state its justification.
#[must_use = "the allowance lasts only while the guard lives"]
pub fn allow_blocking(_reason: &str) -> AllowBlocking {
    ALLOW.with(|allow| allow.set(allow.get() + 1));
    AllowBlocking { _private: () }
}

/// Guard returned by [`allow_blocking`]; the allowance ends when it drops.
pub struct AllowBlocking {
    _private: (),
}

impl Drop for AllowBlocking {
    fn drop(&mut self) {
        ALLOW.with(|allow| allow.set(allow.get() - 1));
    }
}

/// Declares that the caller is about to perform a blocking syscall of the given
/// kind (`"fsync"`, `"socket-read"`, …). Free in release builds; in debug builds it
/// panics when a tracked lock is held outside an [`allow_blocking`] scope.
#[inline]
pub fn annotate(kind: &str) {
    #[cfg(debug_assertions)]
    {
        let held = crate::order::held_locks();
        if held > 0 && ALLOW.with(Cell::get) == 0 {
            panic!(
                "kpg_sync: blocking syscall `{kind}` while holding {held} tracked \
                 lock(s) — every contender now waits on the kernel too. Move the \
                 syscall outside the critical section, or wrap the site in \
                 kpg_sync::blocking::allow_blocking(\"why\") if blocking under the \
                 lock is the protocol."
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = kind;
}
