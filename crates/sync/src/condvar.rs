//! The condition-variable facade.

use std::sync::{LockResult, PoisonError};
use std::time::Duration;

use crate::{Mutex, MutexGuard};

/// Result of [`Condvar::wait_timeout`]. (Our own type: std's has no public
/// constructor, and the model scheduler must be able to synthesize timeouts.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A drop-in `std::sync::Condvar`. Under a model run, waits and notifications are
/// scheduler-visible: a wait releases the model's lock ownership, parks the thread,
/// and re-competes for the lock on notification, exactly like the real primitive —
/// but deterministically, one schedule at a time.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[cfg(feature = "model")]
    #[inline]
    fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Blocks until notified, releasing `guard`'s mutex for the duration.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        #[cfg(feature = "model")]
        if guard.modeled {
            if let Some(scheduler) = crate::model::current() {
                let lock: &'a Mutex<T> = guard.lock;
                let lock_id = guard.lock_id();
                // Drop the real guard and its bookkeeping; the model keeps the
                // blocked/ownership state from here.
                drop(guard.inner.take());
                #[cfg(debug_assertions)]
                crate::order::note_release(lock_id);
                scheduler.condvar_wait(self.id(), lock_id, false);
                return Ok(Self::model_reacquire(lock));
            }
        }
        let lock: &'a Mutex<T> = guard.lock;
        let lock_id = guard.lock_id();
        let inner = guard.inner.take().expect("guard holds the lock");
        #[cfg(debug_assertions)]
        crate::order::note_release(lock_id);
        #[cfg(not(debug_assertions))]
        let _ = lock_id;
        match self.inner.wait(inner) {
            Ok(inner) => Ok(Self::rewrap(lock, inner, false)),
            Err(poisoned) => Err(PoisonError::new(Self::rewrap(
                lock,
                poisoned.into_inner(),
                false,
            ))),
        }
    }

    /// Blocks until notified or `timeout` elapses. Under a model run the timeout
    /// fires only when no other thread can make progress (modeling "time passes").
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        #[cfg(feature = "model")]
        if guard.modeled {
            if let Some(scheduler) = crate::model::current() {
                let lock: &'a Mutex<T> = guard.lock;
                let lock_id = guard.lock_id();
                drop(guard.inner.take());
                #[cfg(debug_assertions)]
                crate::order::note_release(lock_id);
                let timed_out = scheduler.condvar_wait(self.id(), lock_id, true);
                return Ok((Self::model_reacquire(lock), WaitTimeoutResult { timed_out }));
            }
        }
        let lock: &'a Mutex<T> = guard.lock;
        let lock_id = guard.lock_id();
        let inner = guard.inner.take().expect("guard holds the lock");
        #[cfg(debug_assertions)]
        crate::order::note_release(lock_id);
        #[cfg(not(debug_assertions))]
        let _ = lock_id;
        match self.inner.wait_timeout(inner, timeout) {
            Ok((inner, result)) => Ok((
                Self::rewrap(lock, inner, false),
                WaitTimeoutResult {
                    timed_out: result.timed_out(),
                },
            )),
            Err(poisoned) => {
                let (inner, result) = poisoned.into_inner();
                Err(PoisonError::new((
                    Self::rewrap(lock, inner, false),
                    WaitTimeoutResult {
                        timed_out: result.timed_out(),
                    },
                )))
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            scheduler.yield_point();
            scheduler.condvar_notify(self.id(), false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            scheduler.yield_point();
            scheduler.condvar_notify(self.id(), true);
            return;
        }
        self.inner.notify_all();
    }

    /// Rebuilds a guard after the model scheduler has already granted ownership of
    /// `lock` back to the calling thread — so the real mutex is necessarily free and
    /// must be taken *without* consulting the scheduler again.
    #[cfg(feature = "model")]
    #[track_caller]
    fn model_reacquire<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
        use std::sync::TryLockError;
        #[cfg(debug_assertions)]
        crate::order::note_acquire(lock.id(), std::panic::Location::caller());
        let inner = match lock.inner.try_lock() {
            Ok(inner) => inner,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model scheduler granted a lock that is still held")
            }
        };
        MutexGuard {
            lock,
            inner: Some(inner),
            modeled: true,
        }
    }

    #[track_caller]
    fn rewrap<'a, T>(
        lock: &'a Mutex<T>,
        inner: std::sync::MutexGuard<'a, T>,
        modeled: bool,
    ) -> MutexGuard<'a, T> {
        #[cfg(debug_assertions)]
        crate::order::note_acquire(lock.id(), std::panic::Location::caller());
        MutexGuard {
            lock,
            inner: Some(inner),
            modeled,
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
