//! The worker doorbell: an epoch-counting wakeup primitive in the eventfd mold.
//!
//! The server's sequencer appends a whole *batch* of commands and must wake the
//! worker pool exactly once — not once per command, and not by having workers
//! poll a condvar with timeouts. [`Doorbell`] is that primitive:
//!
//! * [`Doorbell::ring`] is **O(1) and lock-free on the fast path**: one atomic
//!   increment, plus a mutex/notify pass only when a sleeper is actually parked.
//!   Ringing an idle doorbell (everyone busy) costs a single `fetch_add`.
//! * [`Doorbell::wait`] parks until *any* ring newer than the epoch the caller
//!   last observed — the caller re-checks its real condition (the log grew, the
//!   server closed) after every return, classic condvar discipline.
//!
//! The usage protocol that makes lost wakeups impossible:
//!
//! ```text
//! let seen = bell.epoch();      // 1: snapshot
//! if work_available() { ... }   // 2: check the resource
//! bell.wait(seen);              // 3: park only if nothing rang since 1
//! ```
//!
//! A producer always makes work visible *before* ringing. If the producer's ring
//! lands between steps 1 and 3, `wait` observes `rings != seen` and returns
//! immediately; if it lands before step 1, step 2 sees the work. Both loads and
//! increments are `SeqCst`, so there is no interleaving in which the consumer
//! both misses the work at step 2 and sleeps through the ring at step 3 — the
//! same Dekker-style argument the facade's model scheduler can check, since the
//! doorbell is built entirely from facade primitives ([`AtomicU64`] +
//! [`Mutex`]/[`Condvar`]) and is therefore fully visible to `model::explore`.

use std::time::Duration;

use crate::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::{Condvar, Mutex};

/// An epoch-counting wakeup doorbell. See the module docs for the protocol.
pub struct Doorbell {
    /// Total rings ever — the epoch. Never decreases; wrap-around is a
    /// theoretical 2^64 rings away.
    rings: AtomicU64,
    /// How many threads are inside `wait` past the fast-path check. Lets `ring`
    /// skip the mutex+notify entirely when nobody is parked.
    sleepers: AtomicUsize,
    /// The parking lot. Holds no data — the epoch is the data — but waits must
    /// re-read `rings` under this lock to close the check-then-park window.
    gate: Mutex<()>,
    bell: Condvar,
}

impl Doorbell {
    /// A doorbell with no rings yet.
    pub const fn new() -> Doorbell {
        Doorbell {
            rings: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            gate: Mutex::new(()),
            bell: Condvar::new(),
        }
    }

    /// The current epoch. Snapshot this *before* checking for work; pass it to
    /// [`Doorbell::wait`] so a ring between the check and the park is not lost.
    pub fn epoch(&self) -> u64 {
        self.rings.load(Ordering::SeqCst)
    }

    /// Rings the doorbell: every current and future [`Doorbell::wait`] whose
    /// `seen` epoch predates this call returns. O(1); takes the internal lock
    /// only when a waiter is actually parked.
    pub fn ring(&self) {
        self.rings.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // The lock pass orders this notify after the sleeper's under-lock
            // epoch re-check: either the sleeper saw the new epoch and never
            // parked, or it parked before we acquired the gate and this notify
            // reaches it.
            drop(self.gate.lock().unwrap());
            self.bell.notify_all();
        }
    }

    /// Parks the calling thread until the epoch advances past `seen`. Returns
    /// immediately if it already has. Spurious returns are allowed (and under the
    /// model scheduler, exercised) — callers re-check their condition in a loop.
    pub fn wait(&self, seen: u64) {
        if self.rings.load(Ordering::SeqCst) != seen {
            return;
        }
        // Brief spin before parking: a sequencer that is about to ring usually
        // does so within a microsecond, and dodging the park/unpark syscall pair
        // is worth ~10µs of round-trip latency. Bounded; skipped under the model
        // scheduler (where spinning is livelock), under Miri (where it is just
        // slow), and on a single hardware thread (where the ringer cannot run
        // until we yield the CPU, so spinning only delays it).
        #[cfg(not(any(feature = "model", miri)))]
        for _ in 0..spin_budget() {
            if self.rings.load(Ordering::Relaxed) != seen {
                // Confirm with the ordering the protocol argument relies on.
                if self.rings.load(Ordering::SeqCst) != seen {
                    return;
                }
            }
            std::hint::spin_loop();
        }
        if self.rings.load(Ordering::SeqCst) != seen {
            return;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.gate.lock().unwrap();
        // Re-check under the lock: a ring between the fast-path check and the
        // lock acquisition either bumped the epoch (seen here) or will take the
        // gate after us and notify.
        while self.rings.load(Ordering::SeqCst) == seen {
            guard = self.bell.wait(guard).unwrap();
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Like [`Doorbell::wait`] but gives up after `timeout`. Returns `true` if
    /// the epoch advanced, `false` on timeout.
    pub fn wait_timeout(&self, seen: u64, timeout: Duration) -> bool {
        if self.rings.load(Ordering::SeqCst) != seen {
            return true;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.gate.lock().unwrap();
        let mut rang = true;
        while self.rings.load(Ordering::SeqCst) == seen {
            let (reacquired, result) = self.bell.wait_timeout(guard, timeout).unwrap();
            guard = reacquired;
            if result.timed_out() {
                rang = self.rings.load(Ordering::SeqCst) != seen;
                break;
            }
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        rang
    }
}

/// How long to spin in [`Doorbell::wait`] before parking: 4096 iterations on a
/// multi-core machine, zero on a single hardware thread (a spinner there holds
/// the only CPU the would-be ringer needs).
#[cfg(not(any(feature = "model", miri)))]
fn spin_budget() -> u32 {
    static BUDGET: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| match std::thread::available_parallelism() {
        Ok(cores) if cores.get() > 1 => 4096,
        _ => 0,
    })
}

impl Default for Doorbell {
    fn default() -> Doorbell {
        Doorbell::new()
    }
}

impl std::fmt::Debug for Doorbell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Doorbell")
            .field("epoch", &self.rings.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{thread, Arc};

    #[test]
    fn ring_before_wait_returns_immediately() {
        let bell = Doorbell::new();
        let seen = bell.epoch();
        bell.ring();
        bell.wait(seen); // must not hang
        assert_eq!(bell.epoch(), seen + 1);
    }

    #[test]
    fn wait_timeout_reports_timeout() {
        let bell = Doorbell::new();
        let seen = bell.epoch();
        assert!(!bell.wait_timeout(seen, Duration::from_millis(10)));
        bell.ring();
        assert!(bell.wait_timeout(seen, Duration::from_millis(10)));
    }

    #[test]
    fn one_ring_wakes_every_parked_waiter() {
        let bell = Arc::new(Doorbell::new());
        let seen = bell.epoch();
        let waiters: Vec<_> = (0..4)
            .map(|index| {
                let bell = Arc::clone(&bell);
                thread::Builder::new()
                    .name(format!("waiter-{index}"))
                    .spawn(move || bell.wait(seen))
                    .unwrap()
            })
            .collect();
        // Let the waiters park (best effort; the protocol is correct either way).
        std::thread::sleep(Duration::from_millis(20));
        bell.ring();
        for waiter in waiters {
            waiter.join().unwrap();
        }
    }

    #[test]
    fn producer_consumer_never_loses_a_wakeup() {
        // Hammer the protocol from the module docs: a producer publishes N items
        // and rings once per item; the consumer must drain all N without hanging.
        const ITEMS: u64 = 10_000;
        let bell = Arc::new(Doorbell::new());
        let published = Arc::new(AtomicU64::new(0));

        let producer = {
            let bell = Arc::clone(&bell);
            let published = Arc::clone(&published);
            thread::Builder::new()
                .name("producer".into())
                .spawn(move || {
                    for next in 1..=ITEMS {
                        published.store(next, Ordering::SeqCst);
                        bell.ring();
                    }
                })
                .unwrap()
        };

        let mut consumed = 0;
        while consumed < ITEMS {
            let seen = bell.epoch();
            let available = published.load(Ordering::SeqCst);
            if available > consumed {
                consumed = available;
                continue;
            }
            bell.wait(seen);
        }
        producer.join().unwrap();
        assert_eq!(consumed, ITEMS);
    }
}
