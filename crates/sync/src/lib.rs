//! The workspace's concurrency facade.
//!
//! Every crate in this repository synchronizes through these types instead of
//! `std::sync`/`std::thread` (enforced by the `lint_sync` scanner in `kpg_bench`).
//! The facade compiles to three progressively stricter behaviors:
//!
//! * **Release, no `model` feature** — thin `#[inline]` wrappers over the std
//!   primitives. Zero cost: no tracking, no branches, no extra state.
//! * **Debug builds (both modes)** — every [`Mutex`]/[`RwLock`] acquisition feeds a
//!   process-wide *lock-order graph*; a cycle (AB/BA deadlock potential) panics with
//!   the offending chain of acquisition sites. [`blocking::annotate`] additionally
//!   panics when a blocking syscall (fsync, socket IO) runs while a tracked lock is
//!   held, unless the site opted in via [`blocking::allow_blocking`].
//! * **`model` feature** — operations performed by a thread inside
//!   [`model::explore`] route through an in-tree deterministic scheduler: exactly one
//!   runnable thread at a time, scheduling decisions taken by a seeded PCT-style
//!   strategy or exhaustive small-bound enumeration, every blocking operation visible
//!   to the scheduler (so real deadlocks are *detected*, not hung on), and every
//!   failing schedule replayable from its printed seed or decision trace. Threads
//!   outside a model run (ordinary tests sharing the binary) fall through to the std
//!   behavior above.
//!
//! The rules for using the facade are documented in the repository README under
//! "Concurrency verification".

#![forbid(unsafe_code)]

mod barrier;
pub mod blocking;
mod condvar;
mod doorbell;
pub mod mpsc;
mod mutex;
pub mod order;
mod rwlock;
pub mod thread;

pub mod atomic;

#[cfg(feature = "model")]
pub mod model;

pub use barrier::{Barrier, BarrierWaitResult};
pub use condvar::{Condvar, WaitTimeoutResult};
pub use doorbell::Doorbell;
pub use mutex::{Mutex, MutexGuard};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};

// Pure re-exports: these have no blocking semantics a scheduler needs to see (an
// `Arc` clone never waits), so the std types are the facade.
pub use std::sync::{Arc, LockResult, OnceLock, PoisonError, TryLockError, TryLockResult, Weak};

/// One scheduling point: under an active model run this hands control to the
/// scheduler (which may run any other runnable thread before returning); otherwise it
/// is free. Facade operations call this before every visible effect.
#[inline]
pub(crate) fn model_yield() {
    #[cfg(feature = "model")]
    if let Some(scheduler) = model::current() {
        scheduler.yield_point();
    }
}
