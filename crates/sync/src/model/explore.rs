//! Schedule exploration: runs a model body under many schedules and reports the
//! first failing one with everything needed to replay it exactly.
//!
//! Phases:
//!
//! 1. **Calibration** — one PCT run with a fixed seed and no preemption points,
//!    measuring the run's step count (used to place later change points). Itself a
//!    checked schedule.
//! 2. **Exhaustive (DFS)** — enumerate decision prefixes depth-first up to
//!    `Config::exhaustive` schedules. If the tree is exhausted within the cap, the
//!    result is complete for this body and the random phase is skipped.
//! 3. **Randomized (PCT)** — `Config::schedules` seeded runs with random priorities
//!    and `Config::change_points` priority-demotion points.
//!
//! Environment knobs (read per [`explore`] call; use a test filter so they apply to
//! one model at a time):
//!
//! * `KPG_MODEL_SCHEDULES=N` — shrink/grow both phase budgets (CI lanes, Miri).
//! * `KPG_MODEL_REPLAY_TRACE=c0,c1,...` — replay one literal decision trace.
//! * `KPG_MODEL_REPLAY_SEED=S` — replay one PCT schedule by seed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

use super::rng::SplitMix64;
use super::scheduler::{Scheduler, Strategy};

/// Fixed seed for the calibration run, so its step count — and therefore the
/// change-point placement of every later schedule — is reproducible without state.
const CALIBRATION_SEED: u64 = 0x9E37_79B9;

/// Exploration budgets and seeds for one [`explore`] call.
#[derive(Clone, Debug)]
pub struct Config {
    /// Randomized (PCT) schedules to run.
    pub schedules: usize,
    /// Cap on exhaustive DFS schedules; `None` skips the exhaustive phase.
    pub exhaustive: Option<usize>,
    /// Base seed; schedule `i` derives its own seed from it.
    pub seed: u64,
    /// Priority-demotion points per PCT schedule (PCT's `d - 1`).
    pub change_points: usize,
    /// Per-schedule scheduling-point cap (livelock guard).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            schedules: 128,
            exhaustive: Some(256),
            seed: 0x006b_7067, // "kpg"
            change_points: 3,
            max_steps: 50_000,
        }
    }
}

/// Runs `body` under [`Config::default`]. See [`explore`].
pub fn explore_default(name: &str, body: impl Fn() + Send + Sync + 'static) {
    explore(name, Config::default(), body);
}

/// Explores `body` under many schedules; panics — with the failure, the decision
/// trace, and replay instructions — on the first schedule that fails (panics,
/// deadlocks, or exceeds `max_steps`). Returns normally if every schedule passes.
pub fn explore(name: &str, mut config: Config, body: impl Fn() + Send + Sync + 'static) {
    install_hook();
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);

    if let Ok(value) = std::env::var("KPG_MODEL_SCHEDULES") {
        if let Ok(n) = value.trim().parse::<usize>() {
            config.schedules = n;
            config.exhaustive = config.exhaustive.map(|cap| cap.min(n.max(1)));
        }
    }

    if let Ok(value) = std::env::var("KPG_MODEL_REPLAY_TRACE") {
        let choices: Vec<u32> = value
            .split(',')
            .map(str::trim)
            .filter(|part| !part.is_empty())
            .map(|part| part.parse().expect("KPG_MODEL_REPLAY_TRACE: bad choice"))
            .collect();
        let (failure, trace, _) = run_once(Strategy::Trace { choices }, config.max_steps, &body);
        if let Some(failure) = failure {
            report(name, "trace replay", &failure, &trace, None);
        }
        eprintln!("model `{name}`: trace replay completed without failure");
        return;
    }

    if let Ok(value) = std::env::var("KPG_MODEL_REPLAY_SEED") {
        let seed = parse_seed(&value);
        let estimated = calibrate(name, &config, &body);
        let strategy = Strategy::pct(seed, config.change_points, estimated);
        let (failure, trace, _) = run_once(strategy, config.max_steps, &body);
        if let Some(failure) = failure {
            report(
                name,
                &format!("seed replay ({seed:#x})"),
                &failure,
                &trace,
                Some(seed),
            );
        }
        eprintln!("model `{name}`: seed replay completed without failure");
        return;
    }

    let estimated = calibrate(name, &config, &body);

    if let Some(cap) = config.exhaustive {
        let mut prefix: Vec<u32> = Vec::new();
        let mut count = 0usize;
        loop {
            let (failure, trace, _) = run_once(Strategy::Dfs { prefix }, config.max_steps, &body);
            count += 1;
            if let Some(failure) = failure {
                report(
                    name,
                    &format!("exhaustive schedule {count}"),
                    &failure,
                    &trace,
                    None,
                );
            }
            // Advance the deepest decision that still has untried options.
            let advance = (0..trace.len())
                .rev()
                .find(|&at| trace[at].0 + 1 < trace[at].1);
            match advance {
                Some(at) => {
                    let mut next: Vec<u32> =
                        trace[..at].iter().map(|&(choice, _)| choice).collect();
                    next.push(trace[at].0 + 1);
                    prefix = next;
                }
                None => {
                    // Decision tree exhausted: coverage is complete, the random
                    // phase cannot add schedules.
                    return;
                }
            }
            if count >= cap {
                break;
            }
        }
    }

    let mut seeds = SplitMix64::new(config.seed);
    for index in 0..config.schedules {
        let seed = seeds.next_u64();
        let strategy = Strategy::pct(seed, config.change_points, estimated);
        let (failure, trace, _) = run_once(strategy, config.max_steps, &body);
        if let Some(failure) = failure {
            report(
                name,
                &format!("PCT schedule {index} (seed {seed:#x})"),
                &failure,
                &trace,
                Some(seed),
            );
        }
    }
}

/// The calibration run: fixed seed, no preemption points. Returns its step count.
fn calibrate(name: &str, config: &Config, body: &Arc<dyn Fn() + Send + Sync>) -> usize {
    let strategy = Strategy::pct(CALIBRATION_SEED, 0, 2);
    let (failure, trace, steps) = run_once(strategy, config.max_steps, body);
    if let Some(failure) = failure {
        report(name, "calibration schedule", &failure, &trace, None);
    }
    steps.max(2)
}

/// Runs `body` once under `strategy`: fresh scheduler, fresh OS threads, collected
/// outcome. The root of the run is model thread 0.
fn run_once(
    strategy: Strategy,
    max_steps: usize,
    body: &Arc<dyn Fn() + Send + Sync>,
) -> (Option<String>, Vec<(u32, u32)>, usize) {
    let scheduler = Arc::new(Scheduler::new(strategy, max_steps));
    let sched = scheduler.clone();
    let body = body.clone();
    let root = std::thread::Builder::new()
        .name("kpg-model/root".to_string())
        .spawn(move || {
            super::enter_thread(&sched, 0);
            let result = catch_unwind(AssertUnwindSafe(|| body()));
            // Panics become the run's recorded failure; nothing propagates (the
            // explorer reads the outcome from the scheduler).
            super::exit_thread(&sched, 0, result.as_ref().err());
        })
        .expect("failed to spawn model root thread");
    let _ = root.join();
    scheduler.wait_all_finished();
    scheduler.outcome()
}

fn parse_seed(value: &str) -> u64 {
    let value = value.trim();
    let parsed = match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.expect("KPG_MODEL_REPLAY_SEED: bad seed")
}

fn report(name: &str, schedule: &str, failure: &str, trace: &[(u32, u32)], seed: Option<u64>) -> ! {
    let csv: Vec<String> = trace
        .iter()
        .map(|&(choice, _)| choice.to_string())
        .collect();
    let csv = csv.join(",");
    let seed_line = match seed {
        Some(seed) => format!(
            "\n  replay by seed:  KPG_MODEL_REPLAY_SEED={seed:#x} cargo test --features model -- <this test>"
        ),
        None => String::new(),
    };
    panic!(
        "model `{name}` failed under {schedule}\n  {failure}\n  decisions ({count}): {csv}\n  \
         replay exactly: KPG_MODEL_REPLAY_TRACE='{csv}' cargo test --features model -- <this test>{seed_line}",
        count = trace.len(),
    );
}

/// Silences default panic output from model-run threads: their panics are captured
/// and re-reported once, with the schedule attached, by [`report`]. Installed once
/// per process; panics from any other thread pass through untouched.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let model_thread = std::thread::current()
                .name()
                .is_some_and(|thread| thread.starts_with("kpg-model"));
            if !model_thread {
                previous(info);
            }
        }));
    });
}
