//! The deterministic concurrency model (the `model` feature).
//!
//! [`explore`] runs a closure — which may spawn facade threads and use every facade
//! primitive — under many schedules. Real OS threads execute, but the scheduler
//! keeps exactly one runnable at a time and takes every interleaving decision
//! itself, from a seeded PCT-style randomized strategy or by exhaustive small-bound
//! enumeration. Blocking is scheduler-visible, so a real deadlock is *reported*
//! (with every thread's blocked state) rather than hung on, and a failing schedule
//! prints its seed and decision trace for exact replay.
//!
//! Threads not inside a model run — including other tests sharing the binary while
//! the feature is compiled in — fall through to the std behavior: dispatch is by
//! thread-local lookup, not by cfg alone.

mod explore;
mod rng;
mod scheduler;

pub use explore::{explore, explore_default, Config};
pub use scheduler::Scheduler;

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

thread_local! {
    /// The scheduler governing this thread, if it is part of a model run.
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
    /// Set while this thread unwinds out of an aborted run: facade operations must
    /// stop consulting the scheduler (its state is being torn down).
    static ABORTING: Cell<bool> = const { Cell::new(false) };
}

/// Panic payload used to tear down a run's threads once a failure is recorded.
pub(crate) struct ModelAbort;

/// The scheduler governing the calling thread, if any (and not mid-abort).
pub(crate) fn current() -> Option<Arc<Scheduler>> {
    if ABORTING.with(Cell::get) {
        return None;
    }
    CURRENT.with(|current| current.borrow().as_ref().map(|(sched, _)| sched.clone()))
}

/// The calling thread's model thread id. Panics when called off a modeled thread.
pub(crate) fn current_tid() -> usize {
    CURRENT.with(|current| {
        current
            .borrow()
            .as_ref()
            .map(|&(_, tid)| tid)
            .expect("not a modeled thread")
    })
}

/// Marks the calling thread as unwinding out of an aborted run.
pub(crate) fn set_aborting() {
    ABORTING.with(|aborting| aborting.set(true));
}

/// Binds the calling OS thread to `scheduler` as model thread `tid` and parks until
/// the scheduler makes it active for the first time.
pub(crate) fn enter_thread(scheduler: &Arc<Scheduler>, tid: usize) {
    CURRENT.with(|current| {
        *current.borrow_mut() = Some((scheduler.clone(), tid));
    });
    scheduler.thread_begin(tid);
}

/// Reports the thread's completion to the scheduler. A panic payload other than the
/// teardown marker becomes the run's failure (first one wins).
pub(crate) fn exit_thread(
    scheduler: &Arc<Scheduler>,
    tid: usize,
    panic: Option<&Box<dyn Any + Send + 'static>>,
) {
    let failure = panic.and_then(|payload| {
        if payload.downcast_ref::<ModelAbort>().is_some() {
            None
        } else if let Some(message) = payload.downcast_ref::<&str>() {
            Some((*message).to_string())
        } else if let Some(message) = payload.downcast_ref::<String>() {
            Some(message.clone())
        } else {
            Some("<non-string panic payload>".to_string())
        }
    });
    scheduler.thread_end(tid, failure);
    CURRENT.with(|current| {
        *current.borrow_mut() = None;
    });
    ABORTING.with(|aborting| aborting.set(false));
}
