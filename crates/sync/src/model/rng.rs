//! SplitMix64: a tiny, fast, well-distributed PRNG. Plenty for schedule
//! randomization, and dependency-free like the rest of the workspace.

pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-enough draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}
