//! The deterministic scheduler: one runnable thread at a time, every blocking edge
//! visible, every nondeterministic choice routed through one strategy.
//!
//! Real OS threads execute the code under test, but each parks on the scheduler's
//! condvar until made *active*; only the active thread runs. Facade operations call
//! in here at every visible effect, so the scheduler sees the full happens-before
//! structure: lock ownership, condvar waits, channel occupancy-edges, joins,
//! barriers. A state where no thread is runnable and no timeout can fire is a real
//! deadlock and is reported (with each thread's blocked state), not hung on.
//!
//! Every multi-option choice — which runnable thread proceeds, which waiter a
//! `notify_one` wakes, which timeout fires — goes through [`State::pick`] and is
//! appended to the decision trace as `(choice, options)`. The trace is the
//! schedule: replaying it replays the run exactly.

use std::collections::HashMap;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};
use std::time::Duration;

use super::rng::SplitMix64;

/// Demoted PCT priorities live below this; initial priorities at or above it.
const PRIORITY_BASE: u64 = 1 << 32;

/// How a run's scheduling choices are made.
pub(crate) enum Strategy {
    /// PCT-style randomized: threads get random priorities, the highest-priority
    /// runnable thread runs, and at `change_points` (step indices fixed up front)
    /// the running thread is demoted below everyone — so a run with `d` change
    /// points exercises any bug of preemption-depth `d` with known probability.
    Pct {
        rng: SplitMix64,
        priorities: Vec<u64>,
        change_points: Vec<usize>,
        low_counter: u64,
    },
    /// Exhaustive enumeration: follow `prefix` for the first decisions, take option
    /// 0 afterwards. The explorer advances the prefix between runs until the
    /// decision tree is exhausted.
    Dfs { prefix: Vec<u32> },
    /// Literal replay of a recorded decision trace.
    Trace { choices: Vec<u32> },
}

impl Strategy {
    pub(crate) fn pct(seed: u64, change_points: usize, estimated_len: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let span = estimated_len.max(2);
        let change_points = (0..change_points)
            .map(|_| 1 + rng.below(span - 1))
            .collect();
        Strategy::Pct {
            rng,
            priorities: Vec::new(),
            change_points,
            low_counter: PRIORITY_BASE,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Waiting to acquire a mutex or rwlock.
    Lock(usize),
    Condvar {
        cv: usize,
        timeout: bool,
    },
    Channel {
        id: usize,
        timeout: bool,
    },
    Join(usize),
    Barrier(usize),
}

impl Block {
    fn describe(&self) -> String {
        match self {
            Block::Lock(id) => format!("acquiring lock {id:#x}"),
            Block::Condvar { cv, timeout } => {
                format!("waiting on condvar {cv:#x} (timeout-able: {timeout})")
            }
            Block::Channel { id, timeout } => {
                format!("receiving on channel #{id} (timeout-able: {timeout})")
            }
            Block::Join(target) => format!("joining thread {target}"),
            Block::Barrier(id) => format!("at barrier {id:#x}"),
        }
    }

    fn timeout_able(&self) -> bool {
        matches!(
            self,
            Block::Condvar { timeout: true, .. } | Block::Channel { timeout: true, .. }
        )
    }
}

enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

enum LockKind {
    Mutex {
        owner: Option<usize>,
    },
    Rw {
        writer: Option<usize>,
        readers: Vec<usize>,
    },
}

impl LockKind {
    fn vacant(&self) -> bool {
        match self {
            LockKind::Mutex { owner } => owner.is_none(),
            LockKind::Rw { writer, readers } => writer.is_none() && readers.is_empty(),
        }
    }
}

/// No thread is active (run finished or aborting).
const NO_THREAD: usize = usize::MAX;

struct State {
    threads: Vec<Run>,
    /// The one thread allowed to execute, or [`NO_THREAD`].
    active: usize,
    /// Registered threads that have not finished.
    live: usize,
    steps: usize,
    max_steps: usize,
    abort: bool,
    failure: Option<String>,
    locks: HashMap<usize, LockKind>,
    barriers: HashMap<usize, Vec<usize>>,
    /// Why each thread's last block ended: `true` = synthesized timeout.
    wake_timed_out: Vec<bool>,
    strategy: Strategy,
    /// Every multi-option decision this run, as `(choice, options)`.
    trace: Vec<(u32, u32)>,
}

impl State {
    /// Tids currently runnable, ascending (so option ordering is deterministic).
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, run)| matches!(run, Run::Runnable))
            .map(|(tid, _)| tid)
            .collect()
    }

    /// Takes a decision with `options` alternatives. `prefer` is the
    /// strategy-computed choice for PCT thread picks (priority order); random and
    /// exhaustive strategies ignore it where they must.
    fn pick(&mut self, options: usize, prefer: Option<usize>) -> usize {
        let at = self.trace.len();
        let choice = match &mut self.strategy {
            Strategy::Pct { rng, .. } => prefer.unwrap_or_else(|| rng.below(options)),
            Strategy::Dfs { prefix } => prefix.get(at).map_or(0, |&c| c as usize).min(options - 1),
            Strategy::Trace { choices } => {
                choices.get(at).map_or(0, |&c| c as usize).min(options - 1)
            }
        };
        self.trace.push((
            u32::try_from(choice).unwrap(),
            u32::try_from(options).unwrap(),
        ));
        choice
    }

    /// Index into `runnable` the PCT strategy wants (highest priority, tid as
    /// tiebreak); `None` for strategies with no preference.
    fn prefer_index(&self, runnable: &[usize]) -> Option<usize> {
        if let Strategy::Pct { priorities, .. } = &self.strategy {
            runnable
                .iter()
                .enumerate()
                .max_by_key(|&(_, &tid)| (priorities[tid], tid))
                .map(|(index, _)| index)
        } else {
            None
        }
    }

    fn wake(&mut self, tid: usize, timed_out: bool) {
        self.wake_timed_out[tid] = timed_out;
        self.threads[tid] = Run::Runnable;
    }

    /// Releases a model-level mutex and makes its waiters runnable (they re-compete
    /// under scheduler control; who wins is a later decision).
    fn release_mutex(&mut self, id: usize, tid: usize) {
        if let Some(LockKind::Mutex { owner }) = self.locks.get_mut(&id) {
            debug_assert_eq!(*owner, Some(tid), "release by non-owner");
            *owner = None;
        }
        self.wake_lock_waiters(id);
    }

    fn wake_lock_waiters(&mut self, id: usize) {
        for tid in 0..self.threads.len() {
            if matches!(self.threads[tid], Run::Blocked(Block::Lock(blocked)) if blocked == id) {
                self.wake(tid, false);
            }
        }
    }

    /// The lock entry for `id` as the requested kind. A vacant entry left by a
    /// dropped lock whose address was reused by the other kind is replaced.
    fn lock_entry(&mut self, id: usize, rw: bool) -> &mut LockKind {
        let entry = self.locks.entry(id).or_insert_with(|| {
            if rw {
                LockKind::Rw {
                    writer: None,
                    readers: Vec::new(),
                }
            } else {
                LockKind::Mutex { owner: None }
            }
        });
        let mismatched = matches!(entry, LockKind::Mutex { .. }) == rw;
        if mismatched {
            assert!(
                entry.vacant(),
                "model: lock address {id:#x} reused while holders are registered"
            );
            *entry = if rw {
                LockKind::Rw {
                    writer: None,
                    readers: Vec::new(),
                }
            } else {
                LockKind::Mutex { owner: None }
            };
        }
        entry
    }

    fn describe_deadlock(&self) -> String {
        let mut lines =
            vec!["deadlock: every live thread is blocked and no timeout can fire".to_string()];
        for (tid, run) in self.threads.iter().enumerate() {
            if let Run::Blocked(block) = run {
                lines.push(format!("  thread {tid}: {}", block.describe()));
            }
        }
        lines.join("\n")
    }
}

/// One model run's scheduler. Facade operations reach it through the thread-local
/// installed by [`super::enter_thread`].
pub struct Scheduler {
    state: StdMutex<State>,
    cv: StdCondvar,
}

impl Scheduler {
    pub(crate) fn new(strategy: Strategy, max_steps: usize) -> Self {
        let mut state = State {
            threads: Vec::new(),
            active: 0,
            live: 0,
            steps: 0,
            max_steps,
            abort: false,
            failure: None,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            wake_timed_out: Vec::new(),
            strategy,
            trace: Vec::new(),
        };
        // Register the run's root thread as tid 0, active from the start.
        state.threads.push(Run::Runnable);
        state.wake_timed_out.push(false);
        state.live = 1;
        if let Strategy::Pct {
            rng, priorities, ..
        } = &mut state.strategy
        {
            priorities.push(PRIORITY_BASE + rng.next_u64() % PRIORITY_BASE);
        }
        Scheduler {
            state: StdMutex::new(state),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Unwinds the calling thread out of an aborted run.
    fn teardown_panic(&self) -> ! {
        super::set_aborting();
        std::panic::panic_any(super::ModelAbort);
    }

    /// Parks until this thread is active. The only way any modeled thread waits.
    fn park(&self, mut st: StdMutexGuard<'_, State>, tid: usize) {
        loop {
            if st.abort {
                drop(st);
                self.teardown_panic();
            }
            if st.active == tid {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn fail_and_teardown(&self, mut st: StdMutexGuard<'_, State>, message: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
        st.active = NO_THREAD;
        self.cv.notify_all();
        drop(st);
        self.teardown_panic();
    }

    /// Chooses the next active thread when the current one cannot continue
    /// (blocked or finished). Fires a timeout if that is the only way forward;
    /// declares deadlock (fails the run) when there is none.
    fn hand_off(&self, st: &mut State) {
        let runnable = st.runnable();
        if !runnable.is_empty() {
            let index = if runnable.len() > 1 {
                let prefer = st.prefer_index(&runnable);
                st.pick(runnable.len(), prefer)
            } else {
                0
            };
            st.active = runnable[index];
            return;
        }
        // Nothing runnable: model "time passes" by firing one timeout-able wait,
        // chosen by the strategy (which timeout fires first is a real race).
        let timeouts: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, run)| matches!(run, Run::Blocked(block) if block.timeout_able()))
            .map(|(tid, _)| tid)
            .collect();
        if !timeouts.is_empty() {
            let index = if timeouts.len() > 1 {
                st.pick(timeouts.len(), None)
            } else {
                0
            };
            let tid = timeouts[index];
            st.wake(tid, true);
            st.active = tid;
            return;
        }
        if st.live == 0 {
            st.active = NO_THREAD;
            return;
        }
        let report = st.describe_deadlock();
        if st.failure.is_none() {
            st.failure = Some(report);
        }
        st.abort = true;
        st.active = NO_THREAD;
    }

    /// Blocks the calling thread as `block`, hands off, and parks.
    fn block_and_park(&self, mut st: StdMutexGuard<'_, State>, tid: usize, block: Block) {
        st.threads[tid] = Run::Blocked(block);
        self.hand_off(&mut st);
        self.cv.notify_all();
        self.park(st, tid);
    }

    /// One scheduling point: the strategy may hand the processor to any other
    /// runnable thread before the caller proceeds.
    pub fn yield_point(&self) {
        let tid = super::current_tid();
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.teardown_panic();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let max = st.max_steps;
            self.fail_and_teardown(
                st,
                format!(
                    "exceeded max_steps ({max}): likely livelock, or raise \
                     Config::max_steps for this model"
                ),
            );
        }
        let steps = st.steps;
        if let Strategy::Pct {
            priorities,
            change_points,
            low_counter,
            ..
        } = &mut st.strategy
        {
            if change_points.contains(&steps) {
                *low_counter -= 1;
                priorities[tid] = *low_counter;
            }
        }
        let runnable = st.runnable();
        if runnable.len() > 1 {
            let prefer = st.prefer_index(&runnable);
            let index = st.pick(runnable.len(), prefer);
            let next = runnable[index];
            if next != tid {
                st.active = next;
                self.cv.notify_all();
                self.park(st, tid);
            }
        }
    }

    /// Acquires a model-level mutex, blocking under the scheduler as needed.
    pub fn lock_acquire(&self, id: usize) {
        let tid = super::current_tid();
        loop {
            self.yield_point();
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                self.teardown_panic();
            }
            if let LockKind::Mutex { owner } = st.lock_entry(id, false) {
                if owner.is_none() {
                    *owner = Some(tid);
                    return;
                }
            }
            self.block_and_park(st, tid, Block::Lock(id));
            // Woken by a release: loop and re-compete.
        }
    }

    /// Non-blocking mutex acquisition attempt.
    pub fn lock_try_acquire(&self, id: usize) -> bool {
        let tid = super::current_tid();
        self.yield_point();
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.teardown_panic();
        }
        if let LockKind::Mutex { owner } = st.lock_entry(id, false) {
            if owner.is_none() {
                *owner = Some(tid);
                return true;
            }
        }
        false
    }

    /// Releases a model-level mutex.
    pub fn lock_release(&self, id: usize) {
        let tid = super::current_tid();
        let mut st = self.lock_state();
        if st.abort {
            return;
        }
        st.release_mutex(id, tid);
    }

    /// Acquires a model-level rwlock in read or write mode.
    pub fn rwlock_acquire(&self, id: usize, write: bool) {
        let tid = super::current_tid();
        loop {
            self.yield_point();
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                self.teardown_panic();
            }
            if let LockKind::Rw { writer, readers } = st.lock_entry(id, true) {
                let free = if write {
                    writer.is_none() && readers.is_empty()
                } else {
                    writer.is_none()
                };
                if free {
                    if write {
                        *writer = Some(tid);
                    } else {
                        readers.push(tid);
                    }
                    return;
                }
            }
            self.block_and_park(st, tid, Block::Lock(id));
        }
    }

    /// Non-blocking rwlock acquisition attempt.
    pub fn rwlock_try_acquire(&self, id: usize, write: bool) -> bool {
        let tid = super::current_tid();
        self.yield_point();
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.teardown_panic();
        }
        if let LockKind::Rw { writer, readers } = st.lock_entry(id, true) {
            let free = if write {
                writer.is_none() && readers.is_empty()
            } else {
                writer.is_none()
            };
            if free {
                if write {
                    *writer = Some(tid);
                } else {
                    readers.push(tid);
                }
                return true;
            }
        }
        false
    }

    /// Releases a model-level rwlock held in the given mode.
    pub fn rwlock_release(&self, id: usize, write: bool) {
        let tid = super::current_tid();
        let mut st = self.lock_state();
        if st.abort {
            return;
        }
        if let Some(LockKind::Rw { writer, readers }) = st.locks.get_mut(&id) {
            if write {
                debug_assert_eq!(*writer, Some(tid), "write release by non-writer");
                *writer = None;
            } else if let Some(position) = readers.iter().position(|&reader| reader == tid) {
                readers.remove(position);
            }
        }
        st.wake_lock_waiters(id);
    }

    /// Condvar wait: releases the model-level mutex, parks until notified or (if
    /// `timeout`) until the scheduler fires the timeout, re-acquires the mutex, and
    /// reports whether the wake was a timeout.
    pub fn condvar_wait(&self, cv: usize, lock: usize, timeout: bool) -> bool {
        let tid = super::current_tid();
        {
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                self.teardown_panic();
            }
            st.steps += 1;
            st.release_mutex(lock, tid);
            st.wake_timed_out[tid] = false;
            self.block_and_park(st, tid, Block::Condvar { cv, timeout });
        }
        let timed_out = self.lock_state().wake_timed_out[tid];
        self.lock_acquire(lock);
        timed_out
    }

    /// Wakes one (strategy-chosen) or all waiters of a condvar.
    pub fn condvar_notify(&self, cv: usize, all: bool) {
        let mut st = self.lock_state();
        if st.abort {
            return;
        }
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(
                |(_, run)| matches!(run, Run::Blocked(Block::Condvar { cv: waited, .. }) if *waited == cv),
            )
            .map(|(tid, _)| tid)
            .collect();
        if waiters.is_empty() {
            return;
        }
        if all {
            for tid in waiters {
                st.wake(tid, false);
            }
        } else {
            // Which waiter `notify_one` wakes is a real race: a decision.
            let index = if waiters.len() > 1 {
                st.pick(waiters.len(), None)
            } else {
                0
            };
            st.wake(waiters[index], false);
        }
    }

    /// Wakes every thread parked on this channel (a send arrived or a sender
    /// dropped); the woken receivers re-probe under scheduler control.
    pub fn channel_signal(&self, id: usize) {
        let mut st = self.lock_state();
        if st.abort {
            return;
        }
        for tid in 0..st.threads.len() {
            if matches!(
                st.threads[tid],
                Run::Blocked(Block::Channel { id: blocked, .. }) if blocked == id
            ) {
                st.wake(tid, false);
            }
        }
    }

    /// Parks the calling receiver on an empty channel; returns `true` if the wake
    /// was a synthesized timeout.
    pub fn channel_block(&self, id: usize, timeout: bool) -> bool {
        let tid = super::current_tid();
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.teardown_panic();
        }
        st.steps += 1;
        st.wake_timed_out[tid] = false;
        self.block_and_park(st, tid, Block::Channel { id, timeout });
        self.lock_state().wake_timed_out[tid]
    }

    /// Barrier arrival; the `n`-th arrival is the leader and releases the rest.
    pub fn barrier_wait(&self, id: usize, n: usize) -> bool {
        self.yield_point();
        let tid = super::current_tid();
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.teardown_panic();
        }
        let arrivals = st.barriers.entry(id).or_default();
        arrivals.push(tid);
        if arrivals.len() >= n {
            let group = std::mem::take(arrivals);
            for other in group {
                if other != tid {
                    st.wake(other, false);
                }
            }
            true
        } else {
            self.block_and_park(st, tid, Block::Barrier(id));
            false
        }
    }

    /// Blocks until thread `target` has finished.
    pub fn join(&self, target: usize) {
        self.yield_point();
        let tid = super::current_tid();
        let st = self.lock_state();
        if st.abort {
            drop(st);
            self.teardown_panic();
        }
        if matches!(st.threads[target], Run::Finished) {
            return;
        }
        self.block_and_park(st, tid, Block::Join(target));
    }

    /// Registers a new model thread (runnable immediately; the OS thread catches up
    /// in [`Self::thread_begin`]). Returns its tid.
    pub fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        st.threads.push(Run::Runnable);
        st.wake_timed_out.push(false);
        st.live += 1;
        if let Strategy::Pct {
            rng, priorities, ..
        } = &mut st.strategy
        {
            priorities.push(PRIORITY_BASE + rng.next_u64() % PRIORITY_BASE);
        }
        tid
    }

    /// First park of a freshly spawned model thread.
    pub fn thread_begin(&self, tid: usize) {
        let st = self.lock_state();
        self.park(st, tid);
    }

    /// Marks `tid` finished, records its failure (if any), wakes joiners, and hands
    /// the processor off if this thread was active.
    pub fn thread_end(&self, tid: usize, failure: Option<String>) {
        let mut st = self.lock_state();
        if let Some(message) = failure {
            if st.failure.is_none() {
                st.failure = Some(message);
            }
            st.abort = true;
        }
        st.threads[tid] = Run::Finished;
        st.live -= 1;
        for waiter in 0..st.threads.len() {
            if matches!(st.threads[waiter], Run::Blocked(Block::Join(target)) if target == tid) {
                st.wake(waiter, false);
            }
        }
        if st.abort {
            st.active = NO_THREAD;
        } else if st.active == tid {
            self.hand_off(&mut st);
        }
        self.cv.notify_all();
    }

    /// Blocks the (non-modeled) explorer thread until every model thread has
    /// finished. Panics if the run wedges at the OS level — which indicates a bug
    /// in the model itself, not in the code under test.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.lock_state();
        let mut waited = Duration::ZERO;
        let step = Duration::from_millis(200);
        let budget = Duration::from_secs(60);
        while st.live > 0 {
            let (guard, _) = self
                .cv
                .wait_timeout(st, step)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            waited += step;
            assert!(
                waited < budget,
                "model run wedged: {} thread(s) never reached thread_end",
                st.live
            );
        }
    }

    /// The run's result: `(failure, decision trace, steps taken)`.
    pub(crate) fn outcome(&self) -> (Option<String>, Vec<(u32, u32)>, usize) {
        let st = self.lock_state();
        (st.failure.clone(), st.trace.clone(), st.steps)
    }
}
