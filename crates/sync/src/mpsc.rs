//! The channel facade: std's unbounded `mpsc` API.
//!
//! Under a model run, sends and receives are scheduling points and an empty-channel
//! receive parks the thread in the scheduler (woken by a send or by the last sender
//! dropping), so the model sees every blocking edge and can both explore orderings
//! and detect real deadlocks. The value transport is still std's queue — the model
//! only controls *when* each end runs.
//!
//! Model runs must create and use a channel entirely within modeled threads: a send
//! from an unmodeled thread cannot wake a modeled receiver.

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

use std::time::Duration;

/// Creates an unbounded channel, like `std::sync::mpsc::channel`.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let (sender, receiver) = std::sync::mpsc::channel();
    #[cfg(feature = "model")]
    let id = next_channel_id();
    (
        Sender {
            inner: sender,
            #[cfg(feature = "model")]
            id,
        },
        Receiver {
            inner: receiver,
            #[cfg(feature = "model")]
            id,
        },
    )
}

#[cfg(feature = "model")]
fn next_channel_id() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The sending half of a [`channel`].
pub struct Sender<T> {
    inner: std::sync::mpsc::Sender<T>,
    #[cfg(feature = "model")]
    id: usize,
}

impl<T> Sender<T> {
    /// Sends a value; fails only if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            scheduler.yield_point();
            self.inner.send(value)?;
            scheduler.channel_signal(self.id);
            return Ok(());
        }
        self.inner.send(value)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
            #[cfg(feature = "model")]
            id: self.id,
        }
    }
}

#[cfg(feature = "model")]
impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Dropping a sender may complete a disconnect; wake any parked receiver so
        // it can observe it. A spurious wake just re-parks.
        if let Some(scheduler) = crate::model::current() {
            scheduler.channel_signal(self.id);
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

/// The receiving half of a [`channel`].
pub struct Receiver<T> {
    inner: std::sync::mpsc::Receiver<T>,
    #[cfg(feature = "model")]
    id: usize,
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            loop {
                scheduler.yield_point();
                match self.inner.try_recv() {
                    Ok(value) => return Ok(value),
                    Err(TryRecvError::Disconnected) => return Err(RecvError),
                    // No other modeled thread runs between the probe and the park,
                    // so there is no lost-wakeup window.
                    Err(TryRecvError::Empty) => {
                        scheduler.channel_block(self.id, false);
                    }
                }
            }
        }
        self.inner.recv()
    }

    /// Blocks like [`Self::recv`], giving up after `timeout`. Under a model run the
    /// timeout fires only when no other thread can make progress.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            loop {
                scheduler.yield_point();
                match self.inner.try_recv() {
                    Ok(value) => return Ok(value),
                    Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                    Err(TryRecvError::Empty) => {
                        if scheduler.channel_block(self.id, true) {
                            return Err(RecvTimeoutError::Timeout);
                        }
                    }
                }
            }
        }
        self.inner.recv_timeout(timeout)
    }

    /// Returns an immediately available value, if any.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        crate::model_yield();
        self.inner.try_recv()
    }

    /// An iterator of received values; ends when every sender has been dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// An iterator over immediately available values; never blocks.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Blocking iterator returned by `Receiver::into_iter`.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}
