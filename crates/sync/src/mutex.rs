//! The mutual-exclusion facade: std's `Mutex` API, plus debug lock-order tracking
//! and model-scheduler routing.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

/// A drop-in `std::sync::Mutex`: identical API (including poisoning in the
/// passthrough mode), with every acquisition visible to the debug lock-order graph
/// and, under an active model run, to the deterministic scheduler.
pub struct Mutex<T> {
    pub(crate) inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex. `const`, so statics work exactly as with std.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// The lock's identity for order tracking and model-state keying: its address,
    /// stable for the lock's lifetime.
    #[inline]
    pub(crate) fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Acquires the mutex, blocking the calling thread until it is available.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            scheduler.lock_acquire(self.id());
            #[cfg(debug_assertions)]
            crate::order::note_acquire(self.id(), std::panic::Location::caller());
            let inner = match self.inner.try_lock() {
                Ok(inner) => inner,
                Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("model scheduler granted a lock that is still held")
                }
            };
            return Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                modeled: true,
            });
        }
        #[cfg(debug_assertions)]
        crate::order::note_acquire(self.id(), std::panic::Location::caller());
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                modeled: false,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                modeled: false,
            })),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            if !scheduler.lock_try_acquire(self.id()) {
                return Err(TryLockError::WouldBlock);
            }
            #[cfg(debug_assertions)]
            crate::order::note_acquire(self.id(), std::panic::Location::caller());
            let inner = match self.inner.try_lock() {
                Ok(inner) => inner,
                Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("model scheduler granted a lock that is still held")
                }
            };
            return Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                modeled: true,
            });
        }
        match self.inner.try_lock() {
            Ok(inner) => {
                #[cfg(debug_assertions)]
                crate::order::note_acquire(self.id(), std::panic::Location::caller());
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    modeled: false,
                })
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(poisoned)) => {
                #[cfg(debug_assertions)]
                crate::order::note_acquire(self.id(), std::panic::Location::caller());
                Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    modeled: false,
                })))
            }
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Whether the mutex is poisoned (a holder panicked).
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for Mutex<T> {
    fn drop(&mut self) {
        crate::order::note_drop(self.id());
    }
}

/// Guard returned by [`Mutex::lock`]; releases on drop.
pub struct MutexGuard<'a, T> {
    pub(crate) lock: &'a Mutex<T>,
    /// `None` only transiently (condvar wait takes the inner guard out); a guard
    /// whose inner is `None` performs no release bookkeeping on drop.
    pub(crate) inner: Option<std::sync::MutexGuard<'a, T>>,
    pub(crate) modeled: bool,
}

impl<T> MutexGuard<'_, T> {
    pub(crate) fn lock_id(&self) -> usize {
        self.lock.id()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            // Release the real lock before telling the model scheduler: a waiter the
            // scheduler runs next must find the std mutex free.
            drop(inner);
            #[cfg(debug_assertions)]
            crate::order::note_release(self.lock.id());
            #[cfg(feature = "model")]
            if self.modeled {
                if let Some(scheduler) = crate::model::current() {
                    scheduler.lock_release(self.lock.id());
                }
            }
            #[cfg(not(feature = "model"))]
            let _ = self.modeled;
        }
    }
}
