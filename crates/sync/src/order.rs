//! Debug-build lock-order analysis.
//!
//! Every [`Mutex`](crate::Mutex)/[`RwLock`](crate::RwLock) acquisition adds edges
//! `held → acquired` to one process-wide directed graph. An edge that closes a cycle
//! means two code paths acquire the same locks in opposite orders — a deadlock that
//! needs only the right interleaving — and panics immediately, on whichever schedule
//! actually ran, with the chain of acquisition sites. Recursive acquisition of one
//! lock (guaranteed self-deadlock with std's non-reentrant primitives) panics too.
//!
//! The analysis keys locks by address, records the most recent acquisition site per
//! lock for diagnostics, and drops a lock's node when the lock itself drops (so a
//! reused allocation cannot alias a retired lock's edges). Everything compiles to
//! nothing in release builds.

#[cfg(debug_assertions)]
use std::cell::{Cell, RefCell};
#[cfg(debug_assertions)]
use std::collections::{HashMap, HashSet};
#[cfg(debug_assertions)]
use std::panic::Location;
#[cfg(debug_assertions)]
use std::sync::{Mutex as StdMutex, OnceLock as StdOnceLock};

#[cfg(debug_assertions)]
#[derive(Default)]
struct OrderGraph {
    /// `a → b`: some thread acquired `b` while holding `a`.
    edges: HashMap<usize, HashSet<usize>>,
    /// The most recent acquisition site seen for each lock (diagnostics only).
    sites: HashMap<usize, &'static Location<'static>>,
}

#[cfg(debug_assertions)]
impl OrderGraph {
    /// A path `from → … → to` along recorded edges, if one exists.
    fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut stack = vec![vec![from]];
        let mut seen = HashSet::new();
        seen.insert(from);
        while let Some(path) = stack.pop() {
            let node = *path.last().expect("paths are non-empty");
            if node == to {
                return Some(path);
            }
            if let Some(next) = self.edges.get(&node) {
                for &successor in next {
                    if seen.insert(successor) {
                        let mut extended = path.clone();
                        extended.push(successor);
                        stack.push(extended);
                    }
                }
            }
        }
        None
    }

    fn describe(&self, lock: usize) -> String {
        match self.sites.get(&lock) {
            Some(site) => format!("lock {lock:#x} (last acquired at {site})"),
            None => format!("lock {lock:#x}"),
        }
    }
}

#[cfg(debug_assertions)]
fn graph() -> &'static StdMutex<OrderGraph> {
    static GRAPH: StdOnceLock<StdMutex<OrderGraph>> = StdOnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(OrderGraph::default()))
}

#[cfg(debug_assertions)]
thread_local! {
    /// Lock ids this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Edges this thread has already pushed into the global graph: a per-thread
    /// cache so steady-state re-acquisitions never touch the global lock. (A cached
    /// edge can go stale if both endpoint locks drop and their addresses are reused;
    /// that can only suppress a re-check, never invent a false cycle.)
    static KNOWN_EDGES: RefCell<HashSet<(usize, usize)>> = RefCell::new(HashSet::new());
    /// Non-zero while inside [`untracked`].
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// Runs `f` with lock-order tracking disabled on the current thread.
///
/// The escape hatch for code whose opposite-order acquisitions are made safe by an
/// outer protocol the graph cannot see (and for the model self-tests that plant a
/// real AB/BA deadlock for the scheduler to find). Use sparingly, and say why.
pub fn untracked<R>(f: impl FnOnce() -> R) -> R {
    #[cfg(debug_assertions)]
    {
        SUPPRESS.with(|s| s.set(s.get() + 1));
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                SUPPRESS.with(|s| s.set(s.get() - 1));
            }
        }
        let _reset = Reset;
        f()
    }
    #[cfg(not(debug_assertions))]
    f()
}

/// How many tracked locks the current thread holds. Always 0 in release builds
/// (tracking is compiled out), so callers must treat 0 as "nothing to report".
pub fn held_locks() -> usize {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| held.borrow().len())
    }
    #[cfg(not(debug_assertions))]
    0
}

#[cfg(debug_assertions)]
pub(crate) fn note_acquire(lock: usize, site: &'static Location<'static>) {
    if SUPPRESS.with(Cell::get) > 0 {
        return;
    }
    let held_snapshot: Vec<usize> = HELD.with(|held| {
        let held = held.borrow();
        if held.contains(&lock) {
            panic!(
                "kpg_sync: recursive acquisition of lock {lock:#x} at {site} — \
                 std locks are not reentrant, this thread would deadlock on itself"
            );
        }
        held.clone()
    });
    let fresh: Vec<usize> = KNOWN_EDGES.with(|known| {
        let known = known.borrow();
        held_snapshot
            .iter()
            .copied()
            .filter(|&held| !known.contains(&(held, lock)))
            .collect()
    });
    if !fresh.is_empty() {
        let mut graph = graph()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        graph.sites.insert(lock, site);
        for held in fresh.iter().copied() {
            // Inserting `held → lock`: a cycle exists iff `lock` already reaches
            // `held`.
            if let Some(path) = graph.path(lock, held) {
                let mut chain: Vec<String> =
                    path.iter().map(|&node| graph.describe(node)).collect();
                chain.push(graph.describe(lock));
                let rendered = chain.join("\n    -> ");
                drop(graph);
                panic!(
                    "kpg_sync: lock-order cycle (deadlock potential) detected at {site}: \
                     acquiring {lock:#x} while holding {held:#x}, but the reverse order \
                     is already on record:\n    {rendered}\n\
                     Fix the acquisition order, or wrap one side in \
                     kpg_sync::order::untracked with a comment proving why it is safe."
                );
            }
            graph.edges.entry(held).or_default().insert(lock);
        }
        drop(graph);
        KNOWN_EDGES.with(|known| {
            let mut known = known.borrow_mut();
            for held in fresh {
                known.insert((held, lock));
            }
        });
    }
    HELD.with(|held| held.borrow_mut().push(lock));
}

#[cfg(debug_assertions)]
pub(crate) fn note_release(lock: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(position) = held.iter().rposition(|&id| id == lock) {
            held.remove(position);
        }
    });
}

/// Purges a dropped lock's node so a reused address cannot inherit its edges.
#[cfg(debug_assertions)]
pub(crate) fn note_drop(lock: usize) {
    let mut graph = graph()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    graph.edges.remove(&lock);
    for targets in graph.edges.values_mut() {
        targets.remove(&lock);
    }
    graph.sites.remove(&lock);
}
