//! The reader-writer-lock facade.
//!
//! Order tracking treats read and write acquisitions identically: a read-then-write
//! inversion across two locks deadlocks just as surely as write-then-write, so the
//! graph does not distinguish them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

/// A drop-in `std::sync::RwLock`, visible to the debug lock-order graph and, under
/// an active model run, to the deterministic scheduler (which models the full
/// shared/exclusive state: concurrent readers, one writer).
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    #[cfg_attr(not(any(debug_assertions, feature = "model")), allow(dead_code))]
    #[inline]
    pub(crate) fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            scheduler.rwlock_acquire(self.id(), false);
            #[cfg(debug_assertions)]
            crate::order::note_acquire(self.id(), std::panic::Location::caller());
            let inner = match self.inner.try_read() {
                Ok(inner) => inner,
                Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("model scheduler granted a read lock that is write-held")
                }
            };
            return Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                modeled: true,
            });
        }
        #[cfg(debug_assertions)]
        crate::order::note_acquire(self.id(), std::panic::Location::caller());
        match self.inner.read() {
            Ok(inner) => Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                modeled: false,
            }),
            Err(poisoned) => Err(PoisonError::new(RwLockReadGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                modeled: false,
            })),
        }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            scheduler.rwlock_acquire(self.id(), true);
            #[cfg(debug_assertions)]
            crate::order::note_acquire(self.id(), std::panic::Location::caller());
            let inner = match self.inner.try_write() {
                Ok(inner) => inner,
                Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("model scheduler granted a write lock that is still held")
                }
            };
            return Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                modeled: true,
            });
        }
        #[cfg(debug_assertions)]
        crate::order::note_acquire(self.id(), std::panic::Location::caller());
        match self.inner.write() {
            Ok(inner) => Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                modeled: false,
            }),
            Err(poisoned) => Err(PoisonError::new(RwLockWriteGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                modeled: false,
            })),
        }
    }

    /// Attempts shared read access without blocking.
    #[track_caller]
    pub fn try_read(&self) -> TryLockResult<RwLockReadGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            if !scheduler.rwlock_try_acquire(self.id(), false) {
                return Err(TryLockError::WouldBlock);
            }
            #[cfg(debug_assertions)]
            crate::order::note_acquire(self.id(), std::panic::Location::caller());
            let inner = match self.inner.try_read() {
                Ok(inner) => inner,
                Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("model scheduler granted a read lock that is write-held")
                }
            };
            return Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                modeled: true,
            });
        }
        match self.inner.try_read() {
            Ok(inner) => {
                #[cfg(debug_assertions)]
                crate::order::note_acquire(self.id(), std::panic::Location::caller());
                Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    modeled: false,
                })
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(poisoned)) => {
                #[cfg(debug_assertions)]
                crate::order::note_acquire(self.id(), std::panic::Location::caller());
                Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    modeled: false,
                })))
            }
        }
    }

    /// Attempts exclusive write access without blocking.
    #[track_caller]
    pub fn try_write(&self) -> TryLockResult<RwLockWriteGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            if !scheduler.rwlock_try_acquire(self.id(), true) {
                return Err(TryLockError::WouldBlock);
            }
            #[cfg(debug_assertions)]
            crate::order::note_acquire(self.id(), std::panic::Location::caller());
            let inner = match self.inner.try_write() {
                Ok(inner) => inner,
                Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("model scheduler granted a write lock that is still held")
                }
            };
            return Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                modeled: true,
            });
        }
        match self.inner.try_write() {
            Ok(inner) => {
                #[cfg(debug_assertions)]
                crate::order::note_acquire(self.id(), std::panic::Location::caller());
                Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(inner),
                    modeled: false,
                })
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(poisoned)) => {
                #[cfg(debug_assertions)]
                crate::order::note_acquire(self.id(), std::panic::Location::caller());
                Err(TryLockError::Poisoned(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    modeled: false,
                })))
            }
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Whether the lock is poisoned (a writer panicked).
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for RwLock<T> {
    fn drop(&mut self) {
        crate::order::note_drop(self.id());
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    #[cfg_attr(not(any(debug_assertions, feature = "model")), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    modeled: bool,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            #[cfg(debug_assertions)]
            crate::order::note_release(self.lock.id());
            #[cfg(feature = "model")]
            if self.modeled {
                if let Some(scheduler) = crate::model::current() {
                    scheduler.rwlock_release(self.lock.id(), false);
                }
            }
            #[cfg(not(feature = "model"))]
            let _ = self.modeled;
        }
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    #[cfg_attr(not(any(debug_assertions, feature = "model")), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    modeled: bool,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            #[cfg(debug_assertions)]
            crate::order::note_release(self.lock.id());
            #[cfg(feature = "model")]
            if self.modeled {
                if let Some(scheduler) = crate::model::current() {
                    scheduler.rwlock_release(self.lock.id(), true);
                }
            }
            #[cfg(not(feature = "model"))]
            let _ = self.modeled;
        }
    }
}
