//! The threading facade.
//!
//! A spawn performed by a modeled thread registers the child with the scheduler
//! before the OS thread exists, runs the closure under the same scheduler (so the
//! whole tree of a model run is serialized), and funnels panics into the run's
//! failure report instead of stderr. Outside a model run everything is a
//! passthrough to `std::thread`.

use std::io;
use std::time::Duration;

/// Thread factory, mirroring `std::thread::Builder`.
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
    stack_size: Option<usize>,
}

impl Builder {
    /// Creates a builder with no name or stack-size override.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread (shows up in panic messages and debuggers).
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Sets the stack size for the new thread.
    #[must_use]
    pub fn stack_size(mut self, size: usize) -> Self {
        self.stack_size = Some(size);
        self
    }

    /// Spawns the thread.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(feature = "model")]
        if let Some(scheduler) = crate::model::current() {
            let tid = scheduler.register_thread();
            let child = scheduler;
            // The "kpg-model/" prefix routes this thread's panics to the run's
            // failure report (see the hook installed by `model::explore`).
            let name = match &self.name {
                Some(name) => format!("kpg-model/{name}"),
                None => format!("kpg-model/t{tid}"),
            };
            let mut builder = std::thread::Builder::new().name(name);
            if let Some(size) = self.stack_size {
                builder = builder.stack_size(size);
            }
            let inner = builder.spawn(move || {
                crate::model::enter_thread(&child, tid);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                crate::model::exit_thread(&child, tid, result.as_ref().err());
                match result {
                    Ok(value) => value,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })?;
            return Ok(JoinHandle {
                inner,
                tid: Some(tid),
            });
        }
        let mut builder = std::thread::Builder::new();
        if let Some(name) = self.name {
            builder = builder.name(name);
        }
        if let Some(size) = self.stack_size {
            builder = builder.stack_size(size);
        }
        Ok(JoinHandle {
            inner: builder.spawn(f)?,
            #[cfg(feature = "model")]
            tid: None,
        })
    }
}

/// Spawns a thread, like `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Handle to a spawned thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    #[cfg(feature = "model")]
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (`Err` if it panicked).
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(feature = "model")]
        if let Some(tid) = self.tid {
            if let Some(scheduler) = crate::model::current() {
                // Block in the scheduler until the target is finished; the real
                // join below then returns without blocking meaningfully.
                scheduler.join(tid);
            }
        }
        self.inner.join()
    }

    /// Whether the thread has finished running.
    pub fn is_finished(&self) -> bool {
        crate::model_yield();
        self.inner.is_finished()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

/// Sleeps, like `std::thread::sleep`. Under a model run this is a pure scheduling
/// point (model time does not pass; a sleep-polling loop will be driven by the
/// scheduler's preemptions, not the clock).
pub fn sleep(duration: Duration) {
    #[cfg(feature = "model")]
    if let Some(scheduler) = crate::model::current() {
        scheduler.yield_point();
        return;
    }
    std::thread::sleep(duration);
}

/// Yields the processor, like `std::thread::yield_now`.
pub fn yield_now() {
    #[cfg(feature = "model")]
    if let Some(scheduler) = crate::model::current() {
        scheduler.yield_point();
        return;
    }
    std::thread::yield_now();
}
