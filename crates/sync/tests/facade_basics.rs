//! Passthrough sanity: the facade behaves like std when no model run is active —
//! in every build configuration, including `--features model`.

use std::time::Duration;

use kpg_sync::atomic::{AtomicU64, Ordering};
use kpg_sync::{mpsc, thread, Arc, Barrier, Condvar, Mutex, RwLock};

#[test]
fn mutex_and_condvar_roundtrip() {
    let slot = Arc::new((Mutex::new(0u32), Condvar::new()));
    let producer = {
        let slot = slot.clone();
        thread::spawn(move || {
            let (lock, cv) = &*slot;
            *lock.lock().unwrap() = 7;
            cv.notify_all();
        })
    };
    let (lock, cv) = &*slot;
    let mut value = lock.lock().unwrap();
    while *value == 0 {
        value = cv.wait(value).unwrap();
    }
    assert_eq!(*value, 7);
    drop(value);
    producer.join().unwrap();
}

#[test]
fn wait_timeout_expires() {
    let lock = Mutex::new(());
    let cv = Condvar::new();
    let guard = lock.lock().unwrap();
    let (_guard, result) = cv.wait_timeout(guard, Duration::from_millis(10)).unwrap();
    assert!(result.timed_out());
}

#[test]
fn rwlock_readers_and_writer() {
    let lock = Arc::new(RwLock::new(1u32));
    {
        // Concurrent readers from *different* threads: same-thread recursive reads
        // are flagged by the order graph (they can deadlock a waiting writer).
        let guard = lock.read().unwrap();
        let other = {
            let lock = lock.clone();
            thread::spawn(move || *lock.read().unwrap())
        };
        assert_eq!(*guard + other.join().unwrap(), 2);
    }
    *lock.write().unwrap() = 5;
    assert_eq!(*lock.read().unwrap(), 5);
}

#[test]
fn channel_and_threads() {
    let (sender, receiver) = mpsc::channel();
    let workers: Vec<_> = (0..4u64)
        .map(|index| {
            let sender = sender.clone();
            thread::Builder::new()
                .name(format!("facade-test-{index}"))
                .spawn(move || sender.send(index).unwrap())
                .unwrap()
        })
        .collect();
    drop(sender);
    let mut sum = 0;
    while let Ok(value) = receiver.recv() {
        sum += value;
    }
    assert_eq!(sum, 6);
    for worker in workers {
        worker.join().unwrap();
    }
}

#[test]
fn recv_timeout_expires_and_delivers() {
    let (sender, receiver) = mpsc::channel();
    assert!(receiver.recv_timeout(Duration::from_millis(5)).is_err());
    sender.send(9u8).unwrap();
    assert_eq!(receiver.recv_timeout(Duration::from_secs(5)).unwrap(), 9);
}

#[test]
fn barrier_releases_all() {
    let barrier = Arc::new(Barrier::new(3));
    let counter = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let barrier = barrier.clone();
            let counter = counter.clone();
            thread::spawn(move || {
                barrier.wait();
                counter.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    assert_eq!(counter.load(Ordering::SeqCst), 0);
    barrier.wait();
    for worker in workers {
        worker.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2);
}

#[test]
fn atomics_behave_like_std() {
    let value = AtomicU64::new(10);
    assert_eq!(value.fetch_add(5, Ordering::SeqCst), 10);
    assert_eq!(value.swap(1, Ordering::SeqCst), 15);
    assert_eq!(
        value.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst),
        Ok(1)
    );
    assert_eq!(value.load(Ordering::SeqCst), 2);
}
