//! Model-checks the [`Doorbell`] wakeup protocol: under every explored schedule,
//! a producer that publishes work and then rings must be observed by a consumer
//! following the snapshot/check/wait discipline — no interleaving may lose the
//! wakeup, and no waiter may park forever (the model scheduler reports a real
//! deadlock if one does).
#![cfg(feature = "model")]

use kpg_sync::atomic::{AtomicU64, Ordering};
use kpg_sync::model::{explore, Config};
use kpg_sync::{thread, Arc, Doorbell};

fn small_config() -> Config {
    Config {
        schedules: 64,
        exhaustive: Some(2_000),
        ..Config::default()
    }
}

/// One producer, one consumer, one item: the minimal lost-wakeup shape. The
/// adversarial schedule is ring-between-snapshot-and-park; the protocol must
/// survive all of them.
#[test]
fn single_item_handoff_never_loses_the_ring() {
    explore("doorbell-single-handoff", small_config(), || {
        let bell = Arc::new(Doorbell::new());
        let published = Arc::new(AtomicU64::new(0));

        let producer = {
            let bell = Arc::clone(&bell);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                published.store(1, Ordering::SeqCst);
                bell.ring();
            })
        };

        let consumer = {
            let bell = Arc::clone(&bell);
            let published = Arc::clone(&published);
            thread::spawn(move || loop {
                let seen = bell.epoch();
                if published.load(Ordering::SeqCst) == 1 {
                    return;
                }
                bell.wait(seen);
            })
        };

        producer.join().unwrap();
        consumer.join().unwrap();
    });
}

/// Two consumers, one batch ring: both must wake (notify_all semantics) — the
/// server's worker pool relies on one ring per batch reaching every parked
/// worker.
#[test]
fn one_ring_reaches_every_parked_consumer() {
    explore("doorbell-broadcast", small_config(), || {
        let bell = Arc::new(Doorbell::new());
        let published = Arc::new(AtomicU64::new(0));

        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let bell = Arc::clone(&bell);
                let published = Arc::clone(&published);
                thread::spawn(move || loop {
                    let seen = bell.epoch();
                    if published.load(Ordering::SeqCst) == 1 {
                        return;
                    }
                    bell.wait(seen);
                })
            })
            .collect();

        published.store(1, Ordering::SeqCst);
        bell.ring();
        for consumer in consumers {
            consumer.join().unwrap();
        }
    });
}

/// The broken discipline for contrast: snapshotting the epoch *after* checking
/// the resource reopens the lost-wakeup window. The model must find a schedule
/// where the consumer parks forever — witnessed as a detected deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn snapshot_after_check_is_detected_as_lost_wakeup() {
    explore("doorbell-broken-snapshot", small_config(), || {
        let bell = Arc::new(Doorbell::new());
        let published = Arc::new(AtomicU64::new(0));

        let producer = {
            let bell = Arc::clone(&bell);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                published.store(1, Ordering::SeqCst);
                bell.ring();
            })
        };

        let consumer = {
            let bell = Arc::clone(&bell);
            let published = Arc::clone(&published);
            thread::spawn(move || loop {
                // BROKEN: the ring can land between the check and the snapshot.
                if published.load(Ordering::SeqCst) == 1 {
                    return;
                }
                let seen = bell.epoch();
                bell.wait(seen);
            })
        };

        producer.join().unwrap();
        consumer.join().unwrap();
    });
}
