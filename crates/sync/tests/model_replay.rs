//! Replay: a failing schedule's printed decision trace, fed back through
//! `KPG_MODEL_REPLAY_TRACE`, reproduces the identical failure.
//!
//! Lives in its own integration-test binary because the replay environment
//! variables are process-global: nothing else may call `explore` in this process.
#![cfg(feature = "model")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use kpg_sync::atomic::{AtomicU64, Ordering};
use kpg_sync::model::{explore, Config};
use kpg_sync::{thread, Arc};

fn lost_update_body() {
    let counter = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                let read = counter.load(Ordering::SeqCst);
                counter.store(read + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        String::new()
    }
}

#[test]
fn failing_trace_replays_identically() {
    // 1. Find the planted bug; capture the failure report.
    let config = Config {
        schedules: 0,
        exhaustive: Some(10_000),
        ..Config::default()
    };
    let found = catch_unwind(AssertUnwindSafe(|| {
        explore("replay-source", config, lost_update_body);
    }))
    .expect_err("exploration must find the planted lost update");
    let report = panic_message(&*found);
    assert!(
        report.contains("lost update"),
        "unexpected report: {report}"
    );

    // 2. Extract the decision trace from the report's replay line.
    let trace = report
        .split("KPG_MODEL_REPLAY_TRACE='")
        .nth(1)
        .and_then(|rest| rest.split('\'').next())
        .unwrap_or_else(|| panic!("report has no replay line: {report}"))
        .to_string();
    assert!(!trace.is_empty(), "empty decision trace in: {report}");

    // 3. Replay the literal trace: the identical failure must reproduce.
    std::env::set_var("KPG_MODEL_REPLAY_TRACE", &trace);
    let replayed = catch_unwind(AssertUnwindSafe(|| {
        explore(
            "replay-target",
            Config {
                schedules: 0,
                exhaustive: Some(1),
                ..Config::default()
            },
            lost_update_body,
        );
    }));
    std::env::remove_var("KPG_MODEL_REPLAY_TRACE");
    let report = panic_message(&*replayed.expect_err("trace replay must reproduce the failure"));
    assert!(
        report.contains("lost update"),
        "replay produced a different failure: {report}"
    );
    assert!(
        report.contains("trace replay"),
        "replay was not attributed to the trace strategy: {report}"
    );
}
