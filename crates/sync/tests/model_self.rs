//! Self-tests for the deterministic model: prove it *finds* planted bugs (a lost
//! update and an AB/BA deadlock) within its schedule budget, terminates exhaustive
//! exploration, and explores deterministically.
#![cfg(feature = "model")]

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

use kpg_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use kpg_sync::model::{explore, Config};
use kpg_sync::{order, thread, Arc, Mutex};

/// A classic lost update: non-atomic read-modify-write on a shared counter. Some
/// schedule interleaves the two loads before either store and the final count is 1.
fn lost_update_body() {
    let counter = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                let read = counter.load(Ordering::SeqCst);
                counter.store(read + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    assert_eq!(
        counter.load(Ordering::SeqCst),
        2,
        "lost update: both increments read the same initial value"
    );
}

#[test]
#[should_panic(expected = "lost update")]
fn exhaustive_finds_planted_lost_update() {
    explore(
        "planted-lost-update",
        Config {
            schedules: 0,
            exhaustive: Some(10_000),
            ..Config::default()
        },
        lost_update_body,
    );
}

#[test]
#[should_panic(expected = "lost update")]
fn pct_finds_planted_lost_update() {
    explore(
        "planted-lost-update-pct",
        Config {
            schedules: 256,
            exhaustive: None,
            ..Config::default()
        },
        lost_update_body,
    );
}

/// The fixed version of the same body: atomic increments. Every schedule passes.
#[test]
fn fixed_counter_passes_exploration() {
    explore(
        "fixed-counter",
        Config {
            schedules: 32,
            exhaustive: Some(2_000),
            ..Config::default()
        },
        || {
            let counter = Arc::new(AtomicU64::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let counter = counter.clone();
                    thread::spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for worker in workers {
                worker.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        },
    );
}

/// A planted AB/BA deadlock. `order::untracked` bypasses the debug lock-order graph
/// (which would panic on the inversion before any schedule ran) so the *scheduler's*
/// deadlock detection is what this test exercises.
#[test]
#[should_panic(expected = "deadlock")]
fn model_finds_planted_ab_ba_deadlock() {
    explore(
        "planted-deadlock",
        Config {
            schedules: 256,
            exhaustive: Some(10_000),
            ..Config::default()
        },
        || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a1, b1) = (a.clone(), b.clone());
            let forward = thread::spawn(move || {
                order::untracked(|| {
                    let _first = a1.lock().unwrap();
                    let _second = b1.lock().unwrap();
                });
            });
            let (a2, b2) = (a, b);
            let reverse = thread::spawn(move || {
                order::untracked(|| {
                    let _first = b2.lock().unwrap();
                    let _second = a2.lock().unwrap();
                });
            });
            let _ = forward.join();
            let _ = reverse.join();
        },
    );
}

static EXHAUSTIVE_RUNS: StdAtomicUsize = StdAtomicUsize::new(0);

fn counted_tiny_body() {
    EXHAUSTIVE_RUNS.fetch_add(1, StdOrdering::Relaxed);
    let flag = Arc::new(AtomicBool::new(false));
    let setter = {
        let flag = flag.clone();
        thread::spawn(move || {
            flag.store(true, Ordering::SeqCst);
        })
    };
    let _ = flag.load(Ordering::SeqCst);
    setter.join().unwrap();
}

/// Exhaustive exploration of a tiny body terminates (tree exhausted well under the
/// cap), runs more than one schedule, and is deterministic: a second exploration
/// runs exactly the same number of schedules.
#[test]
fn exhaustive_terminates_and_is_deterministic() {
    let config = || Config {
        schedules: 0,
        exhaustive: Some(100_000),
        ..Config::default()
    };
    EXHAUSTIVE_RUNS.store(0, StdOrdering::Relaxed);
    explore("tiny-exhaustive", config(), counted_tiny_body);
    let first = EXHAUSTIVE_RUNS.load(StdOrdering::Relaxed);
    assert!(
        first >= 3,
        "expected the two-thread body to yield multiple schedules, got {first}"
    );
    assert!(
        first < 100_000,
        "expected the decision tree to be exhausted, got {first} schedules"
    );
    EXHAUSTIVE_RUNS.store(0, StdOrdering::Relaxed);
    explore("tiny-exhaustive-again", config(), counted_tiny_body);
    let second = EXHAUSTIVE_RUNS.load(StdOrdering::Relaxed);
    assert_eq!(first, second, "exploration must be deterministic");
}

/// Condvar handoff under the model: a producer sets a flag under the lock and
/// notifies; the consumer waits on the condvar. No schedule may hang or fail.
#[test]
fn condvar_handoff_explored() {
    explore(
        "condvar-handoff",
        Config {
            schedules: 64,
            exhaustive: Some(2_000),
            ..Config::default()
        },
        || {
            let slot = Arc::new((Mutex::new(false), kpg_sync::Condvar::new()));
            let producer = {
                let slot = slot.clone();
                thread::spawn(move || {
                    let (lock, cv) = &*slot;
                    *lock.lock().unwrap() = true;
                    cv.notify_one();
                })
            };
            let (lock, cv) = &*slot;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            producer.join().unwrap();
        },
    );
}

/// Channel transport under the model: values arrive in send order, disconnect is
/// observed, and no schedule hangs.
#[test]
fn channel_roundtrip_explored() {
    explore(
        "channel-roundtrip",
        Config {
            schedules: 64,
            exhaustive: Some(2_000),
            ..Config::default()
        },
        || {
            let (sender, receiver) = kpg_sync::mpsc::channel();
            let producer = thread::spawn(move || {
                for value in 0..3u32 {
                    sender.send(value).unwrap();
                }
            });
            for expected in 0..3u32 {
                assert_eq!(receiver.recv().unwrap(), expected);
            }
            assert!(receiver.recv().is_err(), "sender dropped: disconnect");
            producer.join().unwrap();
        },
    );
}
