//! The static-analysis half of the facade, exercised in a *normal* (non-model)
//! debug build: the lock-order cycle detector, the recursive-acquisition check, and
//! the blocking-syscall-under-lock flag all fire without any scheduler involved.

#![cfg(debug_assertions)]

use kpg_sync::{blocking, order, Mutex};

/// AB then BA in one thread: the second ordering closes a cycle in the lock-order
/// graph and panics on the spot — no unlucky interleaving required.
#[test]
#[should_panic(expected = "lock-order cycle")]
fn cycle_detector_fires_on_ab_ba_inversion() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    {
        let _first = a.lock().unwrap();
        let _second = b.lock().unwrap();
    }
    {
        let _first = b.lock().unwrap();
        let _second = a.lock().unwrap(); // cycle: a -> b on record, adding b -> a
    }
}

#[test]
#[should_panic(expected = "recursive acquisition")]
fn recursive_lock_panics_instead_of_self_deadlocking() {
    let lock = Mutex::new(());
    let _outer = lock.lock().unwrap();
    let _inner = lock.lock().unwrap();
}

#[test]
#[should_panic(expected = "blocking syscall")]
fn blocking_syscall_under_lock_is_flagged() {
    let lock = Mutex::new(());
    let _guard = lock.lock().unwrap();
    blocking::annotate("fsync");
}

#[test]
fn blocking_syscall_allowed_when_opted_in() {
    let lock = Mutex::new(());
    let _guard = lock.lock().unwrap();
    let _allow = blocking::allow_blocking("test: deliberate fsync under lock");
    blocking::annotate("fsync");
}

#[test]
fn blocking_syscall_without_lock_is_fine() {
    blocking::annotate("socket-read");
}

/// `untracked` suppresses graph recording: the same inversion that panics above
/// passes inside the escape hatch (used by model self-tests that plant deadlocks).
#[test]
fn untracked_suppresses_cycle_detection() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    order::untracked(|| {
        {
            let _first = a.lock().unwrap();
            let _second = b.lock().unwrap();
        }
        {
            let _first = b.lock().unwrap();
            let _second = a.lock().unwrap();
        }
    });
}

#[test]
fn held_locks_counts_this_thread_only() {
    assert_eq!(order::held_locks(), 0);
    let lock = Mutex::new(());
    let guard = lock.lock().unwrap();
    assert_eq!(order::held_locks(), 1);
    drop(guard);
    assert_eq!(order::held_locks(), 0);
}
