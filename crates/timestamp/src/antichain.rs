//! Antichains (frontiers) of partially ordered times.

use crate::order::PartialOrder;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// A set of mutually incomparable elements, used as a *frontier*.
///
/// A frontier describes the times that may still be observed on a stream: every future
/// time is greater than or equal to some element of the frontier. The empty antichain
/// means "no further times will ever be observed" — the stream is complete.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Antichain<T> {
    elements: Vec<T>,
}

impl<T: PartialOrder> Antichain<T> {
    /// An empty antichain: no future times (a completed stream).
    pub fn new() -> Self {
        Antichain {
            elements: Vec::new(),
        }
    }

    /// An antichain containing a single element.
    pub fn from_elem(element: T) -> Self {
        Antichain {
            elements: vec![element],
        }
    }

    /// Builds an antichain from arbitrary elements, retaining only the minimal ones.
    // Deliberately an inherent method (not `FromIterator`): inserting into an antichain
    // filters dominated elements, which `collect()` would make easy to overlook.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = T>) -> Self {
        let mut result = Antichain::new();
        for element in iter {
            result.insert(element);
        }
        result
    }

    /// Inserts `element`, unless it is dominated by an existing element.
    ///
    /// Existing elements dominated by `element` are removed. Returns true if the element
    /// was inserted.
    pub fn insert(&mut self, element: T) -> bool {
        if self.elements.iter().any(|x| x.less_equal(&element)) {
            false
        } else {
            self.elements.retain(|x| !element.less_equal(x));
            self.elements.push(element);
            true
        }
    }

    /// True iff some element of the antichain is less than or equal to `time`.
    ///
    /// This is the paper's "`time` is in advance of the frontier": the time may still be
    /// observed (it is not yet complete).
    pub fn less_equal(&self, time: &T) -> bool {
        self.elements.iter().any(|x| x.less_equal(time))
    }

    /// True iff some element of the antichain is strictly less than `time`.
    pub fn less_than(&self, time: &T) -> bool {
        self.elements.iter().any(|x| x.less_than(time))
    }

    /// True iff the antichain has no elements (the stream is complete).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The number of elements in the antichain.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// The elements of the antichain.
    pub fn elements(&self) -> &[T] {
        &self.elements
    }

    /// A borrowed view of the antichain.
    pub fn borrow(&self) -> AntichainRef<'_, T> {
        AntichainRef::new(&self.elements)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.elements.clear();
    }

    /// Replaces the contents with the elements of `other`.
    pub fn clone_from_ref(&mut self, other: AntichainRef<'_, T>)
    where
        T: Clone,
    {
        self.elements.clear();
        self.elements.extend(other.iter().cloned());
    }

    /// True iff `self` and `other` describe the same frontier.
    ///
    /// Antichains are equal as sets; this comparison is insensitive to element order.
    pub fn same_as(&self, other: &Self) -> bool {
        self.elements.len() == other.elements.len()
            && self
                .elements
                .iter()
                .all(|x| other.elements.iter().any(|y| x == y))
    }

    /// True iff every element of `other` is greater than or equal to some element of
    /// `self`; i.e. `self` is a lower (earlier) frontier than `other`.
    pub fn dominates(&self, other: &Self) -> bool {
        other.elements.iter().all(|t| self.less_equal(t))
    }
}

impl<T: PartialOrder> Default for Antichain<T> {
    fn default() -> Self {
        Antichain::new()
    }
}

impl<T: PartialOrder> FromIterator<T> for Antichain<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Antichain::from_iter(iter)
    }
}

/// A borrowed antichain, used to pass frontiers without cloning.
#[derive(Debug)]
pub struct AntichainRef<'a, T> {
    elements: &'a [T],
}

impl<'a, T> Clone for AntichainRef<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for AntichainRef<'a, T> {}

impl<'a, T: PartialOrder> AntichainRef<'a, T> {
    /// Wraps a slice of (assumed mutually incomparable) elements.
    pub fn new(elements: &'a [T]) -> Self {
        AntichainRef { elements }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'a, T> {
        self.elements.iter()
    }

    /// True iff some element is less than or equal to `time`.
    pub fn less_equal(&self, time: &T) -> bool {
        self.elements.iter().any(|x| x.less_equal(time))
    }

    /// True iff some element is strictly less than `time`.
    pub fn less_than(&self, time: &T) -> bool {
        self.elements.iter().any(|x| x.less_than(time))
    }

    /// True iff the antichain is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// The underlying elements.
    pub fn elements(&self) -> &'a [T] {
        self.elements
    }

    /// Clones into an owned antichain.
    pub fn to_owned(&self) -> Antichain<T>
    where
        T: Clone,
    {
        Antichain {
            elements: self.elements.to_vec(),
        }
    }
}

impl<'a, T> IntoIterator for AntichainRef<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter()
    }
}

/// A multiset of times whose minimal elements form a frontier.
///
/// Each time carries a count of outstanding "capabilities"; the frontier is the antichain
/// of minimal times with positive net count. This is how trace handles and operators
/// summarise the read frontiers of many concurrent readers (paper §4.3).
#[derive(Clone, Debug, Default)]
pub struct MutableAntichain<T: Hash + Eq> {
    counts: HashMap<T, i64>,
    frontier: Vec<T>,
}

impl<T: PartialOrder + Clone + Hash + Eq + Debug> MutableAntichain<T> {
    /// An empty mutable antichain.
    pub fn new() -> Self {
        MutableAntichain {
            counts: HashMap::new(),
            frontier: Vec::new(),
        }
    }

    /// A mutable antichain seeded with a single occurrence of `element`.
    pub fn new_bottom(element: T) -> Self {
        let mut result = Self::new();
        result.update_iter(std::iter::once((element, 1)));
        result
    }

    /// The current frontier: minimal times with positive count.
    pub fn frontier(&self) -> AntichainRef<'_, T> {
        AntichainRef::new(&self.frontier)
    }

    /// True iff some frontier element is less than or equal to `time`.
    pub fn less_equal(&self, time: &T) -> bool {
        self.frontier().less_equal(time)
    }

    /// True iff some frontier element is strictly less than `time`.
    pub fn less_than(&self, time: &T) -> bool {
        self.frontier().less_than(time)
    }

    /// True iff no times have positive count.
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Applies a batch of `(time, count_delta)` updates and returns the frontier changes
    /// as `(time, delta)` pairs: `-1` for removed frontier elements, `+1` for added ones.
    pub fn update_iter(&mut self, updates: impl IntoIterator<Item = (T, i64)>) -> Vec<(T, i64)> {
        let old_frontier = self.frontier.clone();
        for (time, delta) in updates {
            let entry = self.counts.entry(time).or_insert(0);
            *entry += delta;
            debug_assert!(*entry >= 0, "negative capability count");
        }
        self.counts.retain(|_, count| *count != 0);
        self.rebuild();

        let mut changes = Vec::new();
        for time in old_frontier.iter() {
            if !self.frontier.contains(time) {
                changes.push((time.clone(), -1));
            }
        }
        for time in self.frontier.iter() {
            if !old_frontier.contains(time) {
                changes.push((time.clone(), 1));
            }
        }
        changes
    }

    fn rebuild(&mut self) {
        self.frontier.clear();
        for time in self.counts.keys() {
            if !self.counts.keys().any(|other| other.less_than(time))
                && !self.frontier.contains(time)
            {
                self.frontier.push(time.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::Product;

    #[test]
    fn antichain_insert_keeps_minimal_elements() {
        let mut frontier = Antichain::new();
        assert!(frontier.insert(Product::new(2u64, 3u64)));
        assert!(frontier.insert(Product::new(3u64, 2u64)));
        assert_eq!(frontier.len(), 2);
        // Dominated by (2,3): rejected.
        assert!(!frontier.insert(Product::new(2u64, 4u64)));
        assert_eq!(frontier.len(), 2);
        // Dominates both existing elements: replaces them.
        assert!(frontier.insert(Product::new(1u64, 1u64)));
        assert_eq!(frontier.len(), 1);
    }

    #[test]
    fn antichain_less_equal_means_in_advance() {
        let frontier = Antichain::from_iter([Product::new(2u64, 3u64), Product::new(3u64, 2u64)]);
        assert!(frontier.less_equal(&Product::new(2, 3)));
        assert!(frontier.less_equal(&Product::new(5, 5)));
        assert!(!frontier.less_equal(&Product::new(2, 2)));
        assert!(!frontier.less_equal(&Product::new(1, 9)));
    }

    #[test]
    fn antichain_empty_admits_nothing() {
        let frontier = Antichain::<u64>::new();
        assert!(!frontier.less_equal(&0));
        assert!(frontier.is_empty());
    }

    #[test]
    fn antichain_same_as_is_order_insensitive() {
        let a = Antichain::from_iter([Product::new(2u64, 3u64), Product::new(3u64, 2u64)]);
        let b = Antichain::from_iter([Product::new(3u64, 2u64), Product::new(2u64, 3u64)]);
        assert!(a.same_as(&b));
    }

    #[test]
    fn antichain_dominates() {
        let lower = Antichain::from_elem(2u64);
        let upper = Antichain::from_elem(5u64);
        assert!(lower.dominates(&upper));
        assert!(!upper.dominates(&lower));
        // The empty antichain (nothing further) is dominated by everything.
        let empty = Antichain::<u64>::new();
        assert!(lower.dominates(&empty));
        assert!(!empty.dominates(&lower));
    }

    #[test]
    fn mutable_antichain_tracks_counts() {
        let mut ma = MutableAntichain::new();
        let changes = ma.update_iter([(3u64, 1), (5u64, 1)]);
        assert_eq!(ma.frontier().elements(), &[3]);
        assert!(changes.contains(&(3, 1)));

        let changes = ma.update_iter([(3u64, -1)]);
        assert_eq!(ma.frontier().elements(), &[5]);
        assert!(changes.contains(&(3, -1)));
        assert!(changes.contains(&(5, 1)));

        let _ = ma.update_iter([(5u64, -1)]);
        assert!(ma.is_empty());
    }

    #[test]
    fn mutable_antichain_partial_order_frontier() {
        let mut ma = MutableAntichain::new();
        ma.update_iter([
            (Product::new(0u64, 2u64), 1),
            (Product::new(1u64, 0u64), 1),
            (Product::new(1u64, 3u64), 1),
        ]);
        let mut frontier: Vec<_> = ma.frontier().iter().copied().collect();
        frontier.sort();
        assert_eq!(frontier, vec![Product::new(0, 2), Product::new(1, 0)]);
    }
}
