//! The lattice trait and the compaction function of Appendix A.

use crate::antichain::AntichainRef;
use crate::order::PartialOrder;

/// A partially ordered type with least upper bounds and greatest lower bounds.
///
/// Differential dataflow requires its timestamps to form a lattice: the `join` (least
/// upper bound, written `∧` in the paper) is used to determine the times at which a
/// `reduce` operator may need to produce output, and the `meet` (greatest lower bound,
/// `∨` in the paper) is used to summarise sets of times, e.g. during compaction.
pub trait Lattice: PartialOrder + Sized {
    /// The least upper bound of `self` and `other`.
    fn join(&self, other: &Self) -> Self;

    /// The greatest lower bound of `self` and `other`.
    fn meet(&self, other: &Self) -> Self;

    /// Updates `self` to the join of `self` and `other`; returns true if `self` changed.
    fn join_assign(&mut self, other: &Self) -> bool
    where
        Self: Clone + Eq,
    {
        let joined = self.join(other);
        if &joined != self {
            *self = joined;
            true
        } else {
            false
        }
    }

    /// Updates `self` to the meet of `self` and `other`; returns true if `self` changed.
    fn meet_assign(&mut self, other: &Self) -> bool
    where
        Self: Clone + Eq,
    {
        let met = self.meet(other);
        if &met != self {
            *self = met;
            true
        } else {
            false
        }
    }

    /// Advances `self` to its representative with respect to the frontier, in place.
    ///
    /// This is the compaction function `rep_F(t) = ⨅_{f ∈ F} (t ⨆ f)` of Appendix A: the
    /// greatest lower bound, over frontier elements `f`, of the least upper bound of the
    /// time and `f`. The result compares identically to `self` against all times greater
    /// than or equal to some element of the frontier (Theorem 1, correctness), and any two
    /// times that compare identically against all such times share a representative
    /// (Theorem 2, optimality). Both theorems are checked by property tests in this crate.
    ///
    /// If the frontier is empty there are no future times to distinguish and `self` is
    /// left unchanged (callers typically drop such updates entirely).
    fn advance_by(&mut self, frontier: AntichainRef<'_, Self>)
    where
        Self: Clone,
    {
        let mut iter = frontier.iter();
        if let Some(first) = iter.next() {
            let mut result = self.join(first);
            for f in iter {
                result = result.meet(&self.join(f));
            }
            *self = result;
        }
    }
}

macro_rules! implement_lattice_integer {
    ($($t:ty,)*) => (
        $(
            impl Lattice for $t {
                #[inline]
                fn join(&self, other: &Self) -> Self { std::cmp::max(*self, *other) }
                #[inline]
                fn meet(&self, other: &Self) -> Self { std::cmp::min(*self, *other) }
            }
        )*
    )
}

implement_lattice_integer!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize,);

impl Lattice for () {
    #[inline]
    fn join(&self, _other: &Self) -> Self {}
    #[inline]
    fn meet(&self, _other: &Self) -> Self {}
}

/// Returns the pointwise meet of all elements, or `None` for an empty iterator.
pub fn meet_all<'a, T: Lattice + Clone + 'a>(mut times: impl Iterator<Item = &'a T>) -> Option<T> {
    let first = times.next()?.clone();
    Some(times.fold(first, |acc, t| acc.meet(t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antichain::Antichain;

    #[test]
    fn integer_lattice_is_min_max() {
        assert_eq!(3u64.join(&5), 5);
        assert_eq!(3u64.meet(&5), 3);
    }

    #[test]
    fn join_assign_reports_change() {
        let mut t = 3u64;
        assert!(t.join_assign(&5));
        assert_eq!(t, 5);
        assert!(!t.join_assign(&4));
        assert_eq!(t, 5);
    }

    #[test]
    fn advance_by_totally_ordered() {
        let frontier = Antichain::from_elem(10u64);
        let mut t = 3u64;
        t.advance_by(frontier.borrow());
        assert_eq!(t, 10);

        let mut t = 12u64;
        t.advance_by(frontier.borrow());
        assert_eq!(t, 12);
    }

    #[test]
    fn advance_by_empty_frontier_is_identity() {
        let frontier = Antichain::<u64>::new();
        let mut t = 3u64;
        t.advance_by(frontier.borrow());
        assert_eq!(t, 3);
    }

    #[test]
    fn meet_all_folds() {
        let times = [5u64, 3, 9];
        assert_eq!(meet_all(times.iter()), Some(3));
        assert_eq!(meet_all(std::iter::empty::<&u64>()), None);
    }
}
