//! Partially ordered timestamps, lattices, antichains and compaction.
//!
//! Differential dataflow update triples `(data, time, diff)` carry a *partially ordered*
//! logical timestamp. This crate provides the timestamp algebra the rest of the system
//! builds on:
//!
//! * [`PartialOrder`] and [`Lattice`] — the comparison, least-upper-bound (`join`) and
//!   greatest-lower-bound (`meet`) operations required of every timestamp type.
//! * [`Timestamp`] — the bundle of traits the runtime requires, plus a `minimum()`.
//! * [`Product`] — the product lattice used for iteration rounds inside `iterate` scopes.
//! * [`Antichain`] and [`MutableAntichain`] — frontiers: sets of mutually incomparable
//!   times describing "which times may still arrive".
//! * [`Lattice::advance_by`] — the compaction function `rep_F(t) = ⨅_{f∈F} (t ⨆ f)` from
//!   Appendix A of the paper, with its correctness and optimality theorems re-proved as
//!   property tests in this crate's test suite.
//! * [`Time`] — the concrete timestamp used by the `kpg-dataflow` runtime: a streaming
//!   epoch plus up to two nested iteration rounds, under the product partial order.
//!
//! As the workspace's one dependency-free foundation crate, it also hosts [`rng`], the
//! small deterministic PRNG the workload crates use for reproducible synthetic inputs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod antichain;
pub mod lattice;
pub mod order;
pub mod product;
pub mod rng;
pub mod time;

pub use antichain::{Antichain, AntichainRef, MutableAntichain};
pub use lattice::Lattice;
pub use order::{PartialOrder, TotalOrder};
pub use product::Product;
pub use time::Time;

/// The full set of requirements the runtime places on a timestamp type.
///
/// A timestamp must be partially ordered, form a lattice, be cheaply clonable and
/// hashable, and have a minimum element from which all computation starts.
pub trait Timestamp:
    PartialOrder
    + Lattice
    + Clone
    + Ord
    + Eq
    + std::hash::Hash
    + std::fmt::Debug
    + Send
    + Sync
    + 'static
{
    /// The least element of the timestamp type; every other time is `>=` this one.
    fn minimum() -> Self;
}

impl Timestamp for () {
    fn minimum() -> Self {}
}

macro_rules! implement_timestamp_integer {
    ($($index_type:ty,)*) => (
        $(
            impl Timestamp for $index_type {
                fn minimum() -> Self { 0 }
            }
        )*
    )
}

implement_timestamp_integer!(u8, u16, u32, u64, usize, i32, i64, isize,);

impl<TOuter: Timestamp, TInner: Timestamp> Timestamp for Product<TOuter, TInner> {
    fn minimum() -> Self {
        Product::new(TOuter::minimum(), TInner::minimum())
    }
}

impl Timestamp for Time {
    fn minimum() -> Self {
        Time::minimum()
    }
}
