//! Partial order traits.

/// A type whose values are partially ordered.
///
/// Unlike `std::cmp::PartialOrd`, this trait is about the *semantic* order of logical
/// timestamps: two times may be incomparable (neither `less_equal` the other) even when
/// the type also implements a total `Ord` used for sorting and deduplication.
pub trait PartialOrder: Eq {
    /// Returns true iff `self` is less than or equal to `other` in the partial order.
    fn less_equal(&self, other: &Self) -> bool;

    /// Returns true iff `self` is strictly less than `other` in the partial order.
    fn less_than(&self, other: &Self) -> bool {
        self.less_equal(other) && self != other
    }
}

/// A marker trait for timestamps whose partial order is total.
///
/// Operators like `count` and `distinct` have substantially simpler implementations for
/// totally ordered times (paper §5.3.2, "Specializations"); the marker lets those
/// specializations be offered with type-level guarantees that they are not misused.
pub trait TotalOrder: PartialOrder {}

macro_rules! implement_partial_total {
    ($($t:ty,)*) => (
        $(
            impl PartialOrder for $t {
                #[inline]
                fn less_equal(&self, other: &Self) -> bool { self <= other }
                #[inline]
                fn less_than(&self, other: &Self) -> bool { self < other }
            }
            impl TotalOrder for $t {}
        )*
    )
}

implement_partial_total!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize,);

impl PartialOrder for () {
    #[inline]
    fn less_equal(&self, _other: &Self) -> bool {
        true
    }
}
impl TotalOrder for () {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_totally_ordered() {
        assert!(3u64.less_equal(&3));
        assert!(3u64.less_equal(&4));
        assert!(!4u64.less_equal(&3));
        assert!(3u64.less_than(&4));
        assert!(!3u64.less_than(&3));
    }

    #[test]
    fn unit_is_a_single_point() {
        assert!(().less_equal(&()));
        assert!(!().less_than(&()));
    }
}
