//! The product lattice used for iteration scopes.

use crate::lattice::Lattice;
use crate::order::PartialOrder;

/// A pair of timestamps under the product partial order.
///
/// `iterate` scopes extend the enclosing scope's timestamp with a round-of-iteration
/// counter. Two products are ordered if and only if both coordinates are ordered the same
/// way (paper §5.4); this is what allows differential dataflow to distinguish "later
/// epoch, earlier round" from "earlier epoch, later round" and compute minimal update
/// sets for iterative computations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Product<TOuter, TInner> {
    /// The outer (enclosing scope) component.
    pub outer: TOuter,
    /// The inner (round of iteration) component.
    pub inner: TInner,
}

impl<TOuter, TInner> Product<TOuter, TInner> {
    /// Creates a product timestamp from its two coordinates.
    pub fn new(outer: TOuter, inner: TInner) -> Self {
        Product { outer, inner }
    }
}

impl<TOuter: PartialOrder, TInner: PartialOrder> PartialOrder for Product<TOuter, TInner> {
    #[inline]
    fn less_equal(&self, other: &Self) -> bool {
        self.outer.less_equal(&other.outer) && self.inner.less_equal(&other.inner)
    }
}

impl<TOuter: Lattice, TInner: Lattice> Lattice for Product<TOuter, TInner> {
    #[inline]
    fn join(&self, other: &Self) -> Self {
        Product {
            outer: self.outer.join(&other.outer),
            inner: self.inner.join(&other.inner),
        }
    }
    #[inline]
    fn meet(&self, other: &Self) -> Self {
        Product {
            outer: self.outer.meet(&other.outer),
            inner: self.inner.meet(&other.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antichain::Antichain;

    #[test]
    fn product_partial_order_requires_both_coordinates() {
        let a = Product::new(1u64, 5u64);
        let b = Product::new(2u64, 3u64);
        assert!(!a.less_equal(&b));
        assert!(!b.less_equal(&a));
        assert!(a.less_equal(&Product::new(1, 5)));
        assert!(a.less_equal(&Product::new(2, 5)));
        assert!(a.less_than(&Product::new(2, 5)));
        assert!(!a.less_than(&Product::new(1, 5)));
    }

    #[test]
    fn product_lattice_is_pointwise() {
        let a = Product::new(1u64, 5u64);
        let b = Product::new(2u64, 3u64);
        assert_eq!(a.join(&b), Product::new(2, 5));
        assert_eq!(a.meet(&b), Product::new(1, 3));
    }

    #[test]
    fn product_advance_by_incomparable_frontier() {
        // Frontier {(0,2), (1,0)}: a time (0,5) is indistinguishable from (1,5) only for
        // observers at or beyond (1,0); its representative must preserve visibility from
        // (0,5) onward along the (0,_) axis too.
        let frontier = Antichain::from_iter([Product::new(0u64, 2u64), Product::new(1u64, 0u64)]);
        let mut t = Product::new(0u64, 1u64);
        t.advance_by(frontier.borrow());
        // join with (0,2) = (0,2); join with (1,0) = (1,1); meet = (0,1)... the
        // representative must compare identically to (0,1) for all times >= frontier.
        // (0,1) <= (0,2) is true, and the representative (0,1) keeps that; compute and
        // check correctness explicitly rather than hard-coding.
        for probe in [
            Product::new(0u64, 2u64),
            Product::new(1, 0),
            Product::new(1, 2),
            Product::new(0, 5),
            Product::new(3, 3),
        ] {
            assert_eq!(
                Product::new(0u64, 1u64).less_equal(&probe),
                t.less_equal(&probe),
                "representative must agree with original at {:?}",
                probe
            );
        }
    }
}
