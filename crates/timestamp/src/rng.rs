//! A small, dependency-free deterministic pseudo-random generator.
//!
//! The workload crates generate their inputs (random graphs, TPC-H-like relations,
//! Datalog fact bases) from fixed seeds so that every experiment and test is exactly
//! reproducible. This module provides the generator they share: xoshiro256**, seeded
//! through SplitMix64, with the narrow sampling surface the generators actually use
//! (`gen_range` over integer ranges and a unit-interval `f64`). It intentionally mirrors
//! the subset of the `rand` crate API the repository once depended on, so generator code
//! reads the same while the build stays free of external dependencies.

use std::ops::{Range, RangeInclusive};

/// A small deterministic PRNG (xoshiro256** seeded via SplitMix64).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the four words of state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 raw bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range`, which may be a half-open (`a..b`) or inclusive
    /// (`a..=b`) integer range. Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform `u64` below `bound` (which must be non-zero), via Lemire rejection to
    /// avoid modulo bias.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        // Widening multiply; reject the low leftovers that would bias small residues.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let raw = self.next_u64();
            let wide = (raw as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Ranges a [`SmallRng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0u32..10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
        }
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
