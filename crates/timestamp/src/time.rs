//! The concrete timestamp used by the `kpg-dataflow` runtime.

use crate::lattice::Lattice;
use crate::order::PartialOrder;

/// The maximum loop nesting depth supported by [`Time`].
///
/// Coordinate 0 is the streaming epoch; coordinates 1 and 2 are rounds of iteration for
/// (up to doubly) nested `iterate` scopes. Doubly nested iteration is what the paper's
/// strongly connected components implementation requires (§6.3).
pub const MAX_DEPTH: usize = 3;

/// A logical timestamp: a streaming epoch plus up to two nested iteration rounds.
///
/// `Time` is the product lattice over its coordinates: `a <= b` iff every coordinate of
/// `a` is `<=` the corresponding coordinate of `b`. Times outside any loop leave the
/// round coordinates at zero, so epoch-only times compare exactly as their epochs do.
///
/// The runtime uses a single concrete timestamp type rather than the per-scope timestamp
/// types of timely dataflow; this is part of substitution S1 described in `DESIGN.md`.
/// The generic lattice machinery in this crate (notably [`Product`](crate::Product)) is
/// still what the trace layer is written against, so alternative timestamp types can be
/// used with arrangements directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time {
    coords: [u64; MAX_DEPTH],
}

impl Time {
    /// The least time: epoch zero, round zero everywhere.
    pub fn minimum() -> Self {
        Time {
            coords: [0; MAX_DEPTH],
        }
    }

    /// A time at the given streaming epoch, outside any loop.
    pub fn from_epoch(epoch: u64) -> Self {
        let mut coords = [0; MAX_DEPTH];
        coords[0] = epoch;
        Time { coords }
    }

    /// A time with explicit coordinates (epoch, first round, second round).
    pub fn from_coords(coords: [u64; MAX_DEPTH]) -> Self {
        Time { coords }
    }

    /// The streaming epoch.
    pub fn epoch(&self) -> u64 {
        self.coords[0]
    }

    /// The coordinate at `depth` (0 = epoch, 1.. = iteration rounds).
    pub fn coord(&self, depth: usize) -> u64 {
        self.coords[depth]
    }

    /// All coordinates.
    pub fn coords(&self) -> [u64; MAX_DEPTH] {
        self.coords
    }

    /// Returns a copy with the coordinate at `depth` replaced by `value`.
    pub fn with_coord(&self, depth: usize, value: u64) -> Self {
        let mut coords = self.coords;
        coords[depth] = value;
        Time { coords }
    }

    /// Returns a copy with the coordinate at `depth` incremented by `delta`.
    ///
    /// This is the feedback ("next round") operation of an `iterate` scope at the given
    /// nesting depth.
    pub fn advanced(&self, depth: usize, delta: u64) -> Self {
        let mut coords = self.coords;
        coords[depth] += delta;
        Time { coords }
    }

    /// Returns a copy with all coordinates at `depth` and deeper reset to zero.
    ///
    /// This is the `leave` operation: updates produced inside an `iterate` scope are
    /// re-timestamped to the enclosing scope's time. The epoch-synchronous scheduler only
    /// advances enclosing-scope frontiers after the loop for an epoch has fully quiesced,
    /// which keeps this re-timestamping sound (see DESIGN.md, substitution S1).
    pub fn left(&self, depth: usize) -> Self {
        let mut coords = self.coords;
        for c in coords.iter_mut().skip(depth) {
            *c = 0;
        }
        Time { coords }
    }
}

impl std::fmt::Debug for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.coords[0], self.coords[1], self.coords[2]
        )
    }
}

impl PartialOrder for Time {
    #[inline]
    fn less_equal(&self, other: &Self) -> bool {
        self.coords
            .iter()
            .zip(other.coords.iter())
            .all(|(a, b)| a <= b)
    }
}

impl Lattice for Time {
    #[inline]
    fn join(&self, other: &Self) -> Self {
        let mut coords = [0; MAX_DEPTH];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = std::cmp::max(self.coords[i], other.coords[i]);
        }
        Time { coords }
    }
    #[inline]
    fn meet(&self, other: &Self) -> Self {
        let mut coords = [0; MAX_DEPTH];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = std::cmp::min(self.coords[i], other.coords[i]);
        }
        Time { coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antichain::Antichain;

    #[test]
    fn epoch_times_compare_as_integers() {
        assert!(Time::from_epoch(2).less_equal(&Time::from_epoch(3)));
        assert!(!Time::from_epoch(3).less_equal(&Time::from_epoch(2)));
        assert!(Time::from_epoch(2).less_than(&Time::from_epoch(3)));
    }

    #[test]
    fn loop_times_are_products() {
        let a = Time::from_coords([1, 5, 0]);
        let b = Time::from_coords([2, 3, 0]);
        assert!(!a.less_equal(&b));
        assert!(!b.less_equal(&a));
        assert_eq!(a.join(&b), Time::from_coords([2, 5, 0]));
        assert_eq!(a.meet(&b), Time::from_coords([1, 3, 0]));
    }

    #[test]
    fn enter_advance_leave_round_trip() {
        let outer = Time::from_epoch(7);
        let in_loop = outer.advanced(1, 3);
        assert_eq!(in_loop.coord(1), 3);
        assert!(outer.less_equal(&in_loop));
        assert_eq!(in_loop.left(1), outer);
    }

    #[test]
    fn advance_by_respects_incomparable_frontier() {
        // Frontier: either epoch 0 at round >= 2, or epoch >= 1 at any round.
        let frontier =
            Antichain::from_iter([Time::from_coords([0, 2, 0]), Time::from_coords([1, 0, 0])]);
        let mut t = Time::from_coords([0, 1, 0]);
        let original = t;
        t.advance_by(frontier.borrow());
        for probe in [
            Time::from_coords([0, 2, 0]),
            Time::from_coords([0, 7, 0]),
            Time::from_coords([1, 0, 0]),
            Time::from_coords([1, 1, 0]),
            Time::from_coords([4, 4, 0]),
        ] {
            assert_eq!(original.less_equal(&probe), t.less_equal(&probe));
        }
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", Time::from_coords([1, 2, 0])), "(1, 2, 0)");
    }
}
