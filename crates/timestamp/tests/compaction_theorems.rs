//! Property tests re-proving the compaction theorems of Appendix A.
//!
//! Theorem 1 (Correctness): for any lattice element `t` and frontier `F`,
//! `t ≡_F rep_F(t)` — the representative compares identically to `t` against every time
//! greater than or equal to some element of `F`.
//!
//! Theorem 2 (Optimality): if `t1 ≡_F t2` then `rep_F(t1) = rep_F(t2)` — indistinguishable
//! times share a representative, so compaction coalesces as much as is safe.

use kpg_timestamp::{Antichain, Lattice, PartialOrder, Product, Time};
use proptest::prelude::*;

type P2 = Product<u64, u64>;

fn small_product() -> impl Strategy<Value = P2> {
    (0u64..6, 0u64..6).prop_map(|(a, b)| Product::new(a, b))
}

fn small_time() -> impl Strategy<Value = Time> {
    ([0u64..5, 0u64..5, 0u64..5]).prop_map(Time::from_coords)
}

fn frontier_of<T: PartialOrder + Clone>(elements: Vec<T>) -> Antichain<T> {
    Antichain::from_iter(elements)
}

/// `t1 ≡_F t2`: the two times compare identically to every probe in advance of `F`.
/// We check against an exhaustive grid of probes, restricted to those in advance of `F`.
fn equivalent_under<TP: PartialOrder>(
    t1: &TP,
    t2: &TP,
    frontier: &Antichain<TP>,
    probes: &[TP],
) -> bool {
    probes
        .iter()
        .filter(|p| frontier.less_equal(p))
        .all(|p| t1.less_equal(p) == t2.less_equal(p))
}

fn product_probes() -> Vec<P2> {
    let mut probes = Vec::new();
    for a in 0..8u64 {
        for b in 0..8u64 {
            probes.push(Product::new(a, b));
        }
    }
    probes
}

fn time_probes() -> Vec<Time> {
    let mut probes = Vec::new();
    for a in 0..6u64 {
        for b in 0..6u64 {
            for c in 0..6u64 {
                probes.push(Time::from_coords([a, b, c]));
            }
        }
    }
    probes
}

proptest! {
    /// Theorem 1 for the two-coordinate product lattice.
    #[test]
    fn correctness_product(t in small_product(), f in prop::collection::vec(small_product(), 1..4)) {
        let frontier = frontier_of(f);
        let mut rep = t;
        rep.advance_by(frontier.borrow());
        let probes = product_probes();
        prop_assert!(equivalent_under(&t, &rep, &frontier, &probes),
            "t={:?} rep={:?} frontier={:?}", t, rep, frontier);
    }

    /// Theorem 2 for the two-coordinate product lattice.
    #[test]
    fn optimality_product(
        t1 in small_product(),
        t2 in small_product(),
        f in prop::collection::vec(small_product(), 1..4),
    ) {
        let frontier = frontier_of(f);
        let probes = product_probes();
        if equivalent_under(&t1, &t2, &frontier, &probes) {
            let mut r1 = t1;
            let mut r2 = t2;
            r1.advance_by(frontier.borrow());
            r2.advance_by(frontier.borrow());
            prop_assert_eq!(r1, r2, "t1={:?} t2={:?} frontier={:?}", t1, t2, frontier);
        }
    }

    /// Theorem 1 for the runtime's three-coordinate `Time`.
    #[test]
    fn correctness_time(t in small_time(), f in prop::collection::vec(small_time(), 1..4)) {
        let frontier = frontier_of(f);
        let mut rep = t;
        rep.advance_by(frontier.borrow());
        let probes = time_probes();
        prop_assert!(equivalent_under(&t, &rep, &frontier, &probes));
    }

    /// Theorem 2 for the runtime's three-coordinate `Time`.
    #[test]
    fn optimality_time(
        t1 in small_time(),
        t2 in small_time(),
        f in prop::collection::vec(small_time(), 1..4),
    ) {
        let frontier = frontier_of(f);
        let probes = time_probes();
        if equivalent_under(&t1, &t2, &frontier, &probes) {
            let mut r1 = t1;
            let mut r2 = t2;
            r1.advance_by(frontier.borrow());
            r2.advance_by(frontier.borrow());
            prop_assert_eq!(r1, r2);
        }
    }

    /// The representative never moves backwards: `t <= rep_F(t)` whenever t is in advance
    /// of F... in general rep_F(t) >= t does not hold for arbitrary lattices unless t is
    /// dominated; for the product of totally ordered chains `rep_F(t)` is always `>= t ∧ f`
    /// for some f; we check the weaker monotonicity property used by the trace layer:
    /// advancing by a *later* frontier never produces an *earlier* representative.
    #[test]
    fn advancing_is_monotone_in_frontier(
        t in small_product(),
        f1 in prop::collection::vec(small_product(), 1..4),
    ) {
        let frontier1 = frontier_of(f1);
        // A strictly later frontier: every element advanced by (1,1).
        let frontier2 = Antichain::from_iter(
            frontier1.elements().iter().map(|p| Product::new(p.outer + 1, p.inner + 1)),
        );
        let mut r1 = t;
        r1.advance_by(frontier1.borrow());
        let mut r12 = r1;
        r12.advance_by(frontier2.borrow());
        let mut r2 = t;
        r2.advance_by(frontier2.borrow());
        // Compacting in two steps or one must agree wherever the later frontier can see.
        let probes = product_probes();
        prop_assert!(equivalent_under(&r12, &r2, &frontier2, &probes));
    }

    /// Lattice laws for Product: join/meet are commutative, associative, idempotent, and
    /// consistent with the partial order.
    #[test]
    fn product_lattice_laws(a in small_product(), b in small_product(), c in small_product()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.meet(&b), b.meet(&a));
        prop_assert_eq!(a.join(&a), a);
        prop_assert_eq!(a.meet(&a), a);
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        prop_assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
        // Bounds.
        prop_assert!(a.less_equal(&a.join(&b)));
        prop_assert!(b.less_equal(&a.join(&b)));
        prop_assert!(a.meet(&b).less_equal(&a));
        prop_assert!(a.meet(&b).less_equal(&b));
        // Absorption.
        prop_assert_eq!(a.join(&a.meet(&b)), a);
        prop_assert_eq!(a.meet(&a.join(&b)), a);
    }

    /// Antichain membership: after inserting arbitrary elements, the retained elements are
    /// mutually incomparable and `less_equal` agrees with a direct scan of the inputs.
    #[test]
    fn antichain_is_minimal_and_faithful(elems in prop::collection::vec(small_product(), 1..10), probe in small_product()) {
        let frontier = Antichain::from_iter(elems.clone());
        for x in frontier.elements() {
            for y in frontier.elements() {
                if x != y {
                    prop_assert!(!x.less_equal(y));
                }
            }
        }
        let direct = elems.iter().any(|e| e.less_equal(&probe));
        prop_assert_eq!(frontier.less_equal(&probe), direct);
    }
}
