//! Randomized tests re-proving the compaction theorems of Appendix A.
//!
//! Theorem 1 (Correctness): for any lattice element `t` and frontier `F`,
//! `t ≡_F rep_F(t)` — the representative compares identically to `t` against every time
//! greater than or equal to some element of `F`.
//!
//! Theorem 2 (Optimality): if `t1 ≡_F t2` then `rep_F(t1) = rep_F(t2)` — indistinguishable
//! times share a representative, so compaction coalesces as much as is safe.
//!
//! Cases are drawn from a seeded deterministic PRNG (`kpg_timestamp::rng`) so every run
//! explores the same corpus and failures are reproducible by seed.

use kpg_timestamp::rng::SmallRng;
use kpg_timestamp::{Antichain, Lattice, PartialOrder, Product, Time};

type P2 = Product<u64, u64>;

const CASES: u64 = 256;

fn small_product(rng: &mut SmallRng) -> P2 {
    Product::new(rng.gen_range(0u64..6), rng.gen_range(0u64..6))
}

fn small_time(rng: &mut SmallRng) -> Time {
    Time::from_coords([
        rng.gen_range(0u64..5),
        rng.gen_range(0u64..5),
        rng.gen_range(0u64..5),
    ])
}

fn small_product_frontier(rng: &mut SmallRng) -> Antichain<P2> {
    let len = rng.gen_range(1usize..4);
    Antichain::from_iter((0..len).map(|_| small_product(rng)))
}

fn small_time_frontier(rng: &mut SmallRng) -> Antichain<Time> {
    let len = rng.gen_range(1usize..4);
    Antichain::from_iter((0..len).map(|_| small_time(rng)))
}

/// `t1 ≡_F t2`: the two times compare identically to every probe in advance of `F`.
/// We check against an exhaustive grid of probes, restricted to those in advance of `F`.
fn equivalent_under<TP: PartialOrder>(
    t1: &TP,
    t2: &TP,
    frontier: &Antichain<TP>,
    probes: &[TP],
) -> bool {
    probes
        .iter()
        .filter(|p| frontier.less_equal(p))
        .all(|p| t1.less_equal(p) == t2.less_equal(p))
}

fn product_probes() -> Vec<P2> {
    let mut probes = Vec::new();
    for a in 0..8u64 {
        for b in 0..8u64 {
            probes.push(Product::new(a, b));
        }
    }
    probes
}

fn time_probes() -> Vec<Time> {
    let mut probes = Vec::new();
    for a in 0..6u64 {
        for b in 0..6u64 {
            for c in 0..6u64 {
                probes.push(Time::from_coords([a, b, c]));
            }
        }
    }
    probes
}

/// Theorem 1 for the two-coordinate product lattice.
#[test]
fn correctness_product() {
    let probes = product_probes();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1000 + case);
        let t = small_product(&mut rng);
        let frontier = small_product_frontier(&mut rng);
        let mut rep = t;
        rep.advance_by(frontier.borrow());
        assert!(
            equivalent_under(&t, &rep, &frontier, &probes),
            "case {case}: t={t:?} rep={rep:?} frontier={frontier:?}"
        );
    }
}

/// Theorem 2 for the two-coordinate product lattice.
#[test]
fn optimality_product() {
    let probes = product_probes();
    for case in 0..4 * CASES {
        let mut rng = SmallRng::seed_from_u64(0x2000 + case);
        let t1 = small_product(&mut rng);
        let t2 = small_product(&mut rng);
        let frontier = small_product_frontier(&mut rng);
        if equivalent_under(&t1, &t2, &frontier, &probes) {
            let mut r1 = t1;
            let mut r2 = t2;
            r1.advance_by(frontier.borrow());
            r2.advance_by(frontier.borrow());
            assert_eq!(
                r1, r2,
                "case {case}: t1={t1:?} t2={t2:?} frontier={frontier:?}"
            );
        }
    }
}

/// Theorem 1 for the runtime's three-coordinate `Time`.
#[test]
fn correctness_time() {
    let probes = time_probes();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3000 + case);
        let t = small_time(&mut rng);
        let frontier = small_time_frontier(&mut rng);
        let mut rep = t;
        rep.advance_by(frontier.borrow());
        assert!(
            equivalent_under(&t, &rep, &frontier, &probes),
            "case {case}: t={t:?} rep={rep:?} frontier={frontier:?}"
        );
    }
}

/// Theorem 2 for the runtime's three-coordinate `Time`.
#[test]
fn optimality_time() {
    let probes = time_probes();
    for case in 0..4 * CASES {
        let mut rng = SmallRng::seed_from_u64(0x4000 + case);
        let t1 = small_time(&mut rng);
        let t2 = small_time(&mut rng);
        let frontier = small_time_frontier(&mut rng);
        if equivalent_under(&t1, &t2, &frontier, &probes) {
            let mut r1 = t1;
            let mut r2 = t2;
            r1.advance_by(frontier.borrow());
            r2.advance_by(frontier.borrow());
            assert_eq!(r1, r2, "case {case}");
        }
    }
}

/// Advancing by a *later* frontier never produces an *earlier* representative: compacting
/// in two steps or one must agree wherever the later frontier can see.
#[test]
fn advancing_is_monotone_in_frontier() {
    let probes = product_probes();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5000 + case);
        let t = small_product(&mut rng);
        let frontier1 = small_product_frontier(&mut rng);
        // A strictly later frontier: every element advanced by (1,1).
        let frontier2 = Antichain::from_iter(
            frontier1
                .elements()
                .iter()
                .map(|p| Product::new(p.outer + 1, p.inner + 1)),
        );
        let mut r1 = t;
        r1.advance_by(frontier1.borrow());
        let mut r12 = r1;
        r12.advance_by(frontier2.borrow());
        let mut r2 = t;
        r2.advance_by(frontier2.borrow());
        assert!(
            equivalent_under(&r12, &r2, &frontier2, &probes),
            "case {case}: t={t:?} frontier1={frontier1:?}"
        );
    }
}

/// Lattice laws for Product: join/meet are commutative, associative, idempotent, and
/// consistent with the partial order.
#[test]
fn product_lattice_laws() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x6000 + case);
        let a = small_product(&mut rng);
        let b = small_product(&mut rng);
        let c = small_product(&mut rng);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.meet(&b), b.meet(&a));
        assert_eq!(a.join(&a), a);
        assert_eq!(a.meet(&a), a);
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
        // Bounds.
        assert!(a.less_equal(&a.join(&b)));
        assert!(b.less_equal(&a.join(&b)));
        assert!(a.meet(&b).less_equal(&a));
        assert!(a.meet(&b).less_equal(&b));
        // Absorption.
        assert_eq!(a.join(&a.meet(&b)), a);
        assert_eq!(a.meet(&a.join(&b)), a);
    }
}

/// Antichain membership: after inserting arbitrary elements, the retained elements are
/// mutually incomparable and `less_equal` agrees with a direct scan of the inputs.
#[test]
fn antichain_is_minimal_and_faithful() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7000 + case);
        let len = rng.gen_range(1usize..10);
        let elems: Vec<P2> = (0..len).map(|_| small_product(&mut rng)).collect();
        let probe = small_product(&mut rng);
        let frontier = Antichain::from_iter(elems.clone());
        for x in frontier.elements() {
            for y in frontier.elements() {
                if x != y {
                    assert!(!x.less_equal(y), "case {case}");
                }
            }
        }
        let direct = elems.iter().any(|e| e.less_equal(&probe));
        assert_eq!(frontier.less_equal(&probe), direct, "case {case}");
    }
}
