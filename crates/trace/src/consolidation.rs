//! Consolidation: coalescing updates with equal data (and time) by adding their diffs.
//!
//! The arrange operator's input buffer is "effectively a partially evaluated merge sort"
//! (paper §4.2): sorting and consolidating keeps the number of buffered updates at most
//! linear in the number of distinct `(data, time)` pairs (design principle 3, bounded
//! memory footprint).

use crate::diff::Semigroup;

/// Sorts `updates` by data and adds together the diffs of equal data, dropping zeros.
pub fn consolidate<D: Ord, R: Semigroup>(updates: &mut Vec<(D, R)>) {
    if updates.len() <= 1 {
        if updates.first().map(|(_, r)| r.is_zero()).unwrap_or(false) {
            updates.clear();
        }
        return;
    }
    updates.sort_by(|a, b| a.0.cmp(&b.0));
    let mut write = 0;
    let mut read = 0;
    while read < updates.len() {
        // Accumulate the run of equal data into position `read`.
        let mut end = read + 1;
        while end < updates.len() && updates[end].0 == updates[read].0 {
            end += 1;
        }
        let (head, tail) = updates.split_at_mut(read + 1);
        for other in &tail[..end - read - 1] {
            head[read].1.plus_equals(&other.1);
        }
        if !updates[read].1.is_zero() {
            updates.swap(write, read);
            write += 1;
        }
        read = end;
    }
    updates.truncate(write);
}

/// Sorts `updates` by `(data, time)` and adds together the diffs of equal pairs, dropping
/// zeros.
pub fn consolidate_updates<D: Ord, T: Ord, R: Semigroup>(updates: &mut Vec<(D, T, R)>) {
    if updates.len() <= 1 {
        if updates
            .first()
            .map(|(_, _, r)| r.is_zero())
            .unwrap_or(false)
        {
            updates.clear();
        }
        return;
    }
    updates.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    let mut write = 0;
    let mut read = 0;
    while read < updates.len() {
        let mut end = read + 1;
        while end < updates.len()
            && updates[end].0 == updates[read].0
            && updates[end].1 == updates[read].1
        {
            end += 1;
        }
        let (head, tail) = updates.split_at_mut(read + 1);
        for other in &tail[..end - read - 1] {
            head[read].2.plus_equals(&other.2);
        }
        if !updates[read].2.is_zero() {
            updates.swap(write, read);
            write += 1;
        }
        read = end;
    }
    updates.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidate_merges_and_drops_zeros() {
        let mut updates = vec![("b", 1isize), ("a", 2), ("b", -1), ("a", 3), ("c", 0)];
        consolidate(&mut updates);
        assert_eq!(updates, vec![("a", 5)]);
    }

    #[test]
    fn consolidate_empty_and_singleton() {
        let mut empty: Vec<(u64, isize)> = vec![];
        consolidate(&mut empty);
        assert!(empty.is_empty());

        let mut zero = vec![(1u64, 0isize)];
        consolidate(&mut zero);
        assert!(zero.is_empty());

        let mut one = vec![(1u64, 2isize)];
        consolidate(&mut one);
        assert_eq!(one, vec![(1, 2)]);
    }

    #[test]
    fn consolidate_updates_respects_times() {
        let mut updates = vec![
            ("a", 1u64, 1isize),
            ("a", 2u64, 1),
            ("a", 1u64, 1),
            ("b", 1u64, 1),
            ("b", 1u64, -1),
        ];
        consolidate_updates(&mut updates);
        assert_eq!(updates, vec![("a", 1, 2), ("a", 2, 1)]);
    }

    #[test]
    fn consolidate_is_stable_under_reordering() {
        let mut a = vec![(3u64, 1u64, 1isize), (1, 2, 1), (3, 1, -1), (2, 1, 5)];
        let mut b = a.clone();
        b.reverse();
        consolidate_updates(&mut a);
        consolidate_updates(&mut b);
        assert_eq!(a, b);
    }
}
