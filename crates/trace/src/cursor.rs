//! Cursors: navigation over one batch, or the union of several.

use crate::diff::Semigroup;
use crate::Data;
use kpg_timestamp::{Lattice, Timestamp};

/// A cursor over an ordered collection of `(key, val, time, diff)` updates.
///
/// Cursors expose the two-level (key, then value) structure of indexed batches, and the
/// `(time, diff)` history of each value. Operators navigate cursors with *alternating
/// seeks* (paper §5.3.1): when two cursors' keys differ, the one with the smaller key
/// seeks forward to the larger, ensuring work at most linear in the smaller input.
pub trait Cursor {
    /// The key component of updates.
    type Key: Data;
    /// The value component of updates.
    type Val: Data;
    /// The timestamp component of updates.
    type Time: Timestamp + Lattice;
    /// The difference component of updates.
    type Diff: Semigroup;

    /// True iff the cursor is positioned at a key.
    fn key_valid(&self) -> bool;
    /// True iff the cursor is positioned at a value of the current key.
    fn val_valid(&self) -> bool;
    /// The current key; panics if `!key_valid()`.
    fn key(&self) -> &Self::Key;
    /// The current value; panics if `!val_valid()`.
    fn val(&self) -> &Self::Val;
    /// Applies `logic` to every `(time, diff)` of the current `(key, val)` pair.
    fn map_times(&mut self, logic: impl FnMut(&Self::Time, &Self::Diff));
    /// Advances the cursor to the next key.
    fn step_key(&mut self);
    /// Advances the cursor to the first key `>= key`, if any.
    fn seek_key(&mut self, key: &Self::Key);
    /// Advances the cursor to the next value of the current key.
    fn step_val(&mut self);
    /// Advances the cursor to the first value `>= val` of the current key, if any.
    fn seek_val(&mut self, val: &Self::Val);
    /// Repositions the cursor at the first key.
    fn rewind_keys(&mut self);
    /// Repositions the cursor at the first value of the current key.
    fn rewind_vals(&mut self);

    /// Accumulates the diffs of the current `(key, val)` pair at times `<= upto`,
    /// returning `None` when the accumulation is zero (or there are no updates).
    fn accumulate_until(&mut self, upto: &Self::Time) -> Option<Self::Diff> {
        use kpg_timestamp::PartialOrder;
        let mut sum: Option<Self::Diff> = None;
        self.map_times(|t, r| {
            if t.less_equal(upto) {
                match &mut sum {
                    None => sum = Some(r.clone()),
                    Some(s) => s.plus_equals(r),
                }
            }
        });
        sum.filter(|s| !s.is_zero())
    }
}

/// A cursor over the union of several cursors (typically, the batches of a trace).
///
/// The merged cursor presents each key once, with the values (and their histories) merged
/// across all constituent cursors.
pub struct CursorList<C: Cursor> {
    cursors: Vec<C>,
    min_key: Vec<usize>,
    min_val: Vec<usize>,
}

impl<C: Cursor> CursorList<C> {
    /// Creates a merged cursor from a list of cursors.
    pub fn new(cursors: Vec<C>) -> Self {
        let mut result = CursorList {
            cursors,
            min_key: Vec::new(),
            min_val: Vec::new(),
        };
        result.minimize_keys();
        result
    }

    /// The number of constituent cursors.
    pub fn cursor_count(&self) -> usize {
        self.cursors.len()
    }

    fn minimize_keys(&mut self) {
        self.min_key.clear();
        let mut min_key: Option<&C::Key> = None;
        for cursor in self.cursors.iter() {
            if cursor.key_valid() {
                let key = cursor.key();
                match min_key {
                    None => min_key = Some(key),
                    Some(current) if key < current => min_key = Some(key),
                    _ => {}
                }
            }
        }
        if let Some(min_key) = min_key.cloned() {
            for (index, cursor) in self.cursors.iter().enumerate() {
                if cursor.key_valid() && cursor.key() == &min_key {
                    self.min_key.push(index);
                }
            }
        }
        self.minimize_vals();
    }

    fn minimize_vals(&mut self) {
        self.min_val.clear();
        let mut min_val: Option<&C::Val> = None;
        for &index in self.min_key.iter() {
            let cursor = &self.cursors[index];
            if cursor.val_valid() {
                let val = cursor.val();
                match min_val {
                    None => min_val = Some(val),
                    Some(current) if val < current => min_val = Some(val),
                    _ => {}
                }
            }
        }
        if let Some(min_val) = min_val.cloned() {
            for &index in self.min_key.iter() {
                let cursor = &self.cursors[index];
                if cursor.val_valid() && cursor.val() == &min_val {
                    self.min_val.push(index);
                }
            }
        }
    }
}

impl<C: Cursor> Cursor for CursorList<C> {
    type Key = C::Key;
    type Val = C::Val;
    type Time = C::Time;
    type Diff = C::Diff;

    fn key_valid(&self) -> bool {
        !self.min_key.is_empty()
    }
    fn val_valid(&self) -> bool {
        !self.min_val.is_empty()
    }
    fn key(&self) -> &Self::Key {
        self.cursors[self.min_key[0]].key()
    }
    fn val(&self) -> &Self::Val {
        self.cursors[self.min_val[0]].val()
    }
    fn map_times(&mut self, mut logic: impl FnMut(&Self::Time, &Self::Diff)) {
        for &index in self.min_val.iter() {
            self.cursors[index].map_times(&mut logic);
        }
    }
    fn step_key(&mut self) {
        for &index in self.min_key.iter() {
            self.cursors[index].step_key();
        }
        self.minimize_keys();
    }
    fn seek_key(&mut self, key: &Self::Key) {
        for cursor in self.cursors.iter_mut() {
            cursor.seek_key(key);
        }
        self.minimize_keys();
    }
    fn step_val(&mut self) {
        for &index in self.min_val.iter() {
            self.cursors[index].step_val();
        }
        self.minimize_vals();
    }
    fn seek_val(&mut self, val: &Self::Val) {
        for &index in self.min_key.iter() {
            self.cursors[index].seek_val(val);
        }
        self.minimize_vals();
    }
    fn rewind_keys(&mut self) {
        for cursor in self.cursors.iter_mut() {
            cursor.rewind_keys();
        }
        self.minimize_keys();
    }
    fn rewind_vals(&mut self) {
        for &index in self.min_key.iter() {
            self.cursors[index].rewind_vals();
        }
        self.minimize_vals();
    }
}

/// Drains a cursor into a flat vector of `(key, val, time, diff)` tuples.
///
/// Intended for tests and small collections; production operators should navigate the
/// cursor directly.
#[allow(clippy::type_complexity)]
pub fn cursor_to_updates<C: Cursor>(cursor: &mut C) -> Vec<(C::Key, C::Val, C::Time, C::Diff)> {
    let mut output = Vec::new();
    cursor.rewind_keys();
    while cursor.key_valid() {
        while cursor.val_valid() {
            let key = cursor.key().clone();
            let val = cursor.val().clone();
            cursor.map_times(|t, r| output.push((key.clone(), val.clone(), t.clone(), r.clone())));
            cursor.step_val();
        }
        cursor.step_key();
    }
    output
}
