//! Batch descriptions: the frontiers that make a batch self-describing.

use kpg_timestamp::{Antichain, PartialOrder};

/// Describes the set of times a batch may contain and how far its times were compacted.
///
/// A batch with description `(lower, upper, since)` contains exactly the updates whose
/// original times were in advance of `lower` and *not* in advance of `upper` (paper
/// §4.1). The `since` frontier records how far those times may have been advanced by
/// compaction: accumulations are only guaranteed correct when performed at times in
/// advance of `since`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Description<T> {
    lower: Antichain<T>,
    upper: Antichain<T>,
    since: Antichain<T>,
}

impl<T: PartialOrder + Clone + std::fmt::Debug> Description<T> {
    /// Creates a description from its three frontiers.
    pub fn new(lower: Antichain<T>, upper: Antichain<T>, since: Antichain<T>) -> Self {
        Description {
            lower,
            upper,
            since,
        }
    }

    /// The lower bound of times contained in the batch.
    pub fn lower(&self) -> &Antichain<T> {
        &self.lower
    }
    /// The exclusive upper bound of times contained in the batch.
    pub fn upper(&self) -> &Antichain<T> {
        &self.upper
    }
    /// The compaction frontier the batch's times were advanced to.
    pub fn since(&self) -> &Antichain<T> {
        &self.since
    }

    /// A description for the merge of two abutting batches.
    ///
    /// The merged batch covers `[self.lower, other.upper)`; its compaction frontier is the
    /// later of the two inputs' and the requested `since`.
    pub fn merged_with(&self, other: &Description<T>, since: Antichain<T>) -> Description<T> {
        debug_assert!(
            self.upper.same_as(&other.lower),
            "merged batches must abut: {:?} vs {:?}",
            self.upper,
            other.lower
        );
        Description::new(self.lower.clone(), other.upper.clone(), since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpg_timestamp::Antichain;

    #[test]
    fn merged_description_spans_both() {
        let a = Description::new(
            Antichain::from_elem(0u64),
            Antichain::from_elem(5u64),
            Antichain::from_elem(0u64),
        );
        let b = Description::new(
            Antichain::from_elem(5u64),
            Antichain::from_elem(9u64),
            Antichain::from_elem(0u64),
        );
        let merged = a.merged_with(&b, Antichain::from_elem(3u64));
        assert_eq!(merged.lower().elements(), &[0]);
        assert_eq!(merged.upper().elements(), &[9]);
        assert_eq!(merged.since().elements(), &[3]);
    }

    #[test]
    #[should_panic(expected = "abut")]
    #[cfg(debug_assertions)]
    fn non_abutting_merge_panics() {
        let a = Description::new(
            Antichain::from_elem(0u64),
            Antichain::from_elem(5u64),
            Antichain::from_elem(0u64),
        );
        let b = Description::new(
            Antichain::from_elem(6u64),
            Antichain::from_elem(9u64),
            Antichain::from_elem(0u64),
        );
        let _ = a.merged_with(&b, Antichain::from_elem(0u64));
    }
}
