//! The algebra of differences.
//!
//! Differential dataflow requires the `diff` component of an update to form a commutative
//! group (paper §3.2): updates can be added together, cancel to zero, and be negated (for
//! retractions). Bilinear operators like `join` additionally multiply differences.

/// A commutative, associative addition with a test for the zero element.
pub trait Semigroup: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Adds `rhs` into `self`.
    fn plus_equals(&mut self, rhs: &Self);
    /// True iff `self` is the additive identity and the update it annotates can be dropped.
    fn is_zero(&self) -> bool;
}

/// A semigroup with an explicit zero element.
pub trait Monoid: Semigroup {
    /// The additive identity.
    fn zero() -> Self;
}

/// A monoid with additive inverses; required for retractions and the `negate` operator.
pub trait Abelian: Monoid {
    /// Replaces `self` with its additive inverse.
    fn negate(&mut self);
    /// Returns the additive inverse of `self`.
    fn negated(&self) -> Self {
        let mut clone = self.clone();
        clone.negate();
        clone
    }
}

/// Multiplication of differences, used by bilinear operators such as `join`.
pub trait Multiply<Rhs = Self> {
    /// The type of the product.
    type Output;
    /// Multiplies `self` by `rhs`.
    fn multiply(&self, rhs: &Rhs) -> Self::Output;
}

macro_rules! implement_diff_integer {
    ($($t:ty,)*) => (
        $(
            impl Semigroup for $t {
                #[inline]
                fn plus_equals(&mut self, rhs: &Self) { *self += rhs; }
                #[inline]
                fn is_zero(&self) -> bool { *self == 0 }
            }
            impl Monoid for $t {
                #[inline]
                fn zero() -> Self { 0 }
            }
            impl Abelian for $t {
                #[inline]
                fn negate(&mut self) { *self = -*self; }
            }
            impl Multiply for $t {
                type Output = $t;
                #[inline]
                fn multiply(&self, rhs: &Self) -> Self { self * rhs }
            }
        )*
    )
}

implement_diff_integer!(i8, i16, i32, i64, i128, isize,);

/// A pair of differences, combined coordinate-wise.
///
/// Useful when maintaining two aggregates at once (for example a sum and a count), the
/// standard trick for maintaining averages incrementally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DiffPair<A, B> {
    /// The first difference.
    pub first: A,
    /// The second difference.
    pub second: B,
}

impl<A, B> DiffPair<A, B> {
    /// Creates a pair of differences.
    pub fn new(first: A, second: B) -> Self {
        DiffPair { first, second }
    }
}

impl<A: Semigroup, B: Semigroup> Semigroup for DiffPair<A, B> {
    fn plus_equals(&mut self, rhs: &Self) {
        self.first.plus_equals(&rhs.first);
        self.second.plus_equals(&rhs.second);
    }
    fn is_zero(&self) -> bool {
        self.first.is_zero() && self.second.is_zero()
    }
}

impl<A: Monoid, B: Monoid> Monoid for DiffPair<A, B> {
    fn zero() -> Self {
        DiffPair::new(A::zero(), B::zero())
    }
}

impl<A: Abelian, B: Abelian> Abelian for DiffPair<A, B> {
    fn negate(&mut self) {
        self.first.negate();
        self.second.negate();
    }
}

impl<A: Multiply<isize, Output = A>, B: Multiply<isize, Output = B>> Multiply<isize>
    for DiffPair<A, B>
{
    type Output = DiffPair<A, B>;
    fn multiply(&self, rhs: &isize) -> Self::Output {
        DiffPair::new(self.first.multiply(rhs), self.second.multiply(rhs))
    }
}

impl Multiply<i64> for isize {
    type Output = isize;
    fn multiply(&self, rhs: &i64) -> isize {
        self * (*rhs as isize)
    }
}

impl Multiply<isize> for i64 {
    type Output = i64;
    fn multiply(&self, rhs: &isize) -> i64 {
        self * (*rhs as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_diffs_add_and_cancel() {
        let mut a = 3isize;
        a.plus_equals(&-3);
        assert!(a.is_zero());
        assert_eq!((-4isize).negated(), 4);
        assert_eq!(3isize.multiply(&5isize), 15);
    }

    #[test]
    fn diff_pair_is_coordinate_wise() {
        let mut p = DiffPair::new(2isize, -1isize);
        p.plus_equals(&DiffPair::new(-2, 1));
        assert!(p.is_zero());
        let mut q = DiffPair::new(1isize, 2isize);
        q.negate();
        assert_eq!(q, DiffPair::new(-1, -2));
        assert_eq!(
            DiffPair::new(2isize, 3isize).multiply(&2isize),
            DiffPair::new(4, 6)
        );
    }
}
