//! `OrdKeyBatch`: the simplified batch representation for key-only collections.
//!
//! Collections whose records carry no value (sets of keys, e.g. the `distinct` operator's
//! inputs and outputs) do not need the two-level key/value navigation of
//! [`OrdValBatch`](crate::OrdValBatch). The paper calls this out under "Modularity"
//! (§4.2): the batch implementation can be swapped without rewriting the surrounding
//! superstructure. This batch stores keys and their `(time, diff)` histories directly,
//! presenting `()` as the value to keep the [`Cursor`] interface uniform.

use kpg_sync::Arc;

use crate::cursor::Cursor;
use crate::description::Description;
use crate::diff::Semigroup;
use crate::ord_batch::compact_history;
use crate::{Batch, BatchReader, Builder, Data, Merger};
use kpg_timestamp::{Antichain, AntichainRef, Lattice, Timestamp};

/// Columnar storage for an [`OrdKeyBatch`].
#[derive(Debug)]
pub struct OrdKeyStorage<K, T, R> {
    /// Sorted, distinct keys.
    pub keys: Vec<K>,
    /// `key_offs[i]..key_offs[i+1]` are the update indices of `keys[i]`.
    pub key_offs: Vec<usize>,
    /// `(time, diff)` histories, grouped by key.
    pub updates: Vec<(T, R)>,
}

impl<K, T, R> OrdKeyStorage<K, T, R> {
    fn empty() -> Self {
        OrdKeyStorage {
            keys: Vec::new(),
            key_offs: vec![0],
            updates: Vec::new(),
        }
    }
}

/// An immutable batch of `(key, time, diff)` updates, indexed by key.
#[derive(Debug)]
pub struct OrdKeyBatch<K, T, R> {
    storage: Arc<OrdKeyStorage<K, T, R>>,
    description: Description<T>,
}

impl<K, T: Clone, R> Clone for OrdKeyBatch<K, T, R> {
    fn clone(&self) -> Self {
        OrdKeyBatch {
            storage: Arc::clone(&self.storage),
            description: self.description.clone(),
        }
    }
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> OrdKeyBatch<K, T, R> {
    /// The shared storage underlying this batch.
    pub fn storage(&self) -> &OrdKeyStorage<K, T, R> {
        &self.storage
    }
    /// The number of distinct keys in the batch.
    pub fn key_count(&self) -> usize {
        self.storage.keys.len()
    }
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> BatchReader for OrdKeyBatch<K, T, R> {
    type Key = K;
    type Val = ();
    type Time = T;
    type Diff = R;
    type Cursor = OrdKeyCursor<K, T, R>;

    fn cursor(&self) -> Self::Cursor {
        OrdKeyCursor {
            storage: Arc::clone(&self.storage),
            key_pos: 0,
            val_exhausted: false,
        }
    }
    fn len(&self) -> usize {
        self.storage.updates.len()
    }
    fn description(&self) -> &Description<T> {
        &self.description
    }
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> Batch for OrdKeyBatch<K, T, R> {
    type Builder = OrdKeyBuilder<K, T, R>;
    type Merger = OrdKeyMerger<K, T, R>;

    fn empty(lower: Antichain<T>, upper: Antichain<T>, since: Antichain<T>) -> Self {
        OrdKeyBatch {
            storage: Arc::new(OrdKeyStorage::empty()),
            description: Description::new(lower, upper, since),
        }
    }

    fn begin_merge(&self, other: &Self, since: AntichainRef<'_, T>) -> Self::Merger {
        OrdKeyMerger {
            key1: 0,
            key2: 0,
            result: OrdKeyStorage::empty(),
            since: since.to_owned(),
            description: self
                .description()
                .merged_with(other.description(), since.to_owned()),
            complete: false,
        }
    }
}

/// Builds an [`OrdKeyBatch`] from unsorted `(key, (), time, diff)` tuples.
///
/// Consolidation is amortized exactly as in [`OrdValBuilder`](crate::OrdValBuilder): the
/// buffer keeps a sorted-and-consolidated prefix that is re-established (via an adaptive
/// sort) whenever the unsorted tail grows to match it, so `done` only folds in the final
/// tail.
pub struct OrdKeyBuilder<K, T, R> {
    buffer: Vec<(K, T, R)>,
    /// Length of the sorted-and-consolidated prefix of `buffer`.
    sorted: usize,
}

impl<K, T, R> Default for OrdKeyBuilder<K, T, R> {
    fn default() -> Self {
        OrdKeyBuilder {
            buffer: Vec::new(),
            sorted: 0,
        }
    }
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> OrdKeyBuilder<K, T, R> {
    /// Sorts the buffer, coalesces equal `(key, time)` tuples, and drops zero diffs.
    fn consolidate_buffer(&mut self) {
        if self.sorted == self.buffer.len() {
            return;
        }
        self.buffer.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut write = 0;
        let mut read = 0;
        while read < self.buffer.len() {
            let mut end = read + 1;
            while end < self.buffer.len()
                && self.buffer[end].0 == self.buffer[read].0
                && self.buffer[end].1 == self.buffer[read].1
            {
                end += 1;
            }
            let (head, tail) = self.buffer.split_at_mut(read + 1);
            for other in &tail[..end - read - 1] {
                head[read].2.plus_equals(&other.2);
            }
            if !self.buffer[read].2.is_zero() {
                self.buffer.swap(write, read);
                write += 1;
            }
            read = end;
        }
        self.buffer.truncate(write);
        self.sorted = self.buffer.len();
    }
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> Builder for OrdKeyBuilder<K, T, R> {
    type Key = K;
    type Val = ();
    type Time = T;
    type Diff = R;
    type Output = OrdKeyBatch<K, T, R>;

    fn with_capacity(capacity: usize) -> Self {
        OrdKeyBuilder {
            buffer: Vec::with_capacity(capacity),
            sorted: 0,
        }
    }

    fn push(&mut self, key: K, _val: (), time: T, diff: R) {
        self.buffer.push((key, time, diff));
        if self.buffer.len() - self.sorted
            >= self.sorted.max(crate::ord_batch::BUILDER_CONSOLIDATE_MIN)
        {
            self.consolidate_buffer();
        }
    }

    fn done(
        mut self,
        lower: Antichain<T>,
        upper: Antichain<T>,
        since: Antichain<T>,
    ) -> Self::Output {
        // As for `OrdValBuilder`: fresh batches keep their original times; compaction to
        // `since` happens lazily during merges.
        self.consolidate_buffer();

        let mut storage = OrdKeyStorage::empty();
        for (key, time, diff) in self.buffer.iter() {
            push_key_update(&mut storage, key, time.clone(), diff.clone());
        }
        seal(&mut storage);
        OrdKeyBatch {
            storage: Arc::new(storage),
            description: Description::new(lower, upper, since),
        }
    }
}

fn push_key_update<K: Data, T, R>(storage: &mut OrdKeyStorage<K, T, R>, key: &K, time: T, diff: R) {
    if storage.keys.last() != Some(key) {
        if !storage.keys.is_empty() {
            storage.key_offs.push(storage.updates.len());
        }
        storage.keys.push(key.clone());
    }
    storage.updates.push((time, diff));
}

fn seal<K, T, R>(storage: &mut OrdKeyStorage<K, T, R>) {
    if !storage.keys.is_empty() {
        storage.key_offs.push(storage.updates.len());
    }
    debug_assert_eq!(storage.key_offs.len(), storage.keys.len() + 1);
}

/// A fuel-based, resumable merger of two [`OrdKeyBatch`]es.
pub struct OrdKeyMerger<K, T, R> {
    key1: usize,
    key2: usize,
    result: OrdKeyStorage<K, T, R>,
    since: Antichain<T>,
    description: Description<T>,
    complete: bool,
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> OrdKeyMerger<K, T, R> {
    fn copy_key(&mut self, source: &OrdKeyStorage<K, T, R>, key_idx: usize) -> usize {
        let key = &source.keys[key_idx];
        let lo = source.key_offs[key_idx];
        let hi = source.key_offs[key_idx + 1];
        let mut history: Vec<(T, R)> = source.updates[lo..hi].to_vec();
        let work = history.len();
        compact_history(&mut history, self.since.borrow());
        for (time, diff) in history {
            push_key_update(&mut self.result, key, time, diff);
        }
        work
    }

    fn merge_key(
        &mut self,
        source1: &OrdKeyStorage<K, T, R>,
        source2: &OrdKeyStorage<K, T, R>,
    ) -> usize {
        let key = source1.keys[self.key1].clone();
        let mut history: Vec<(T, R)> = Vec::new();
        history.extend_from_slice(
            &source1.updates[source1.key_offs[self.key1]..source1.key_offs[self.key1 + 1]],
        );
        history.extend_from_slice(
            &source2.updates[source2.key_offs[self.key2]..source2.key_offs[self.key2 + 1]],
        );
        let work = history.len();
        compact_history(&mut history, self.since.borrow());
        for (time, diff) in history {
            push_key_update(&mut self.result, &key, time, diff);
        }
        work
    }
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> Merger<OrdKeyBatch<K, T, R>>
    for OrdKeyMerger<K, T, R>
{
    fn work(
        &mut self,
        source1: &OrdKeyBatch<K, T, R>,
        source2: &OrdKeyBatch<K, T, R>,
        fuel: &mut isize,
    ) {
        let storage1 = source1.storage();
        let storage2 = source2.storage();
        while *fuel > 0 && !self.complete {
            let have1 = self.key1 < storage1.keys.len();
            let have2 = self.key2 < storage2.keys.len();
            let work = match (have1, have2) {
                (false, false) => {
                    self.complete = true;
                    0
                }
                (true, false) => {
                    let w = self.copy_key(storage1, self.key1);
                    self.key1 += 1;
                    w
                }
                (false, true) => {
                    let w = self.copy_key(storage2, self.key2);
                    self.key2 += 1;
                    w
                }
                (true, true) => match storage1.keys[self.key1].cmp(&storage2.keys[self.key2]) {
                    std::cmp::Ordering::Less => {
                        let w = self.copy_key(storage1, self.key1);
                        self.key1 += 1;
                        w
                    }
                    std::cmp::Ordering::Greater => {
                        let w = self.copy_key(storage2, self.key2);
                        self.key2 += 1;
                        w
                    }
                    std::cmp::Ordering::Equal => {
                        let w = self.merge_key(storage1, storage2);
                        self.key1 += 1;
                        self.key2 += 1;
                        w
                    }
                },
            };
            *fuel -= work.max(1) as isize;
        }
    }

    fn is_complete(&self) -> bool {
        self.complete
    }

    fn done(
        mut self,
        _s1: &OrdKeyBatch<K, T, R>,
        _s2: &OrdKeyBatch<K, T, R>,
    ) -> OrdKeyBatch<K, T, R> {
        assert!(self.complete, "merge extracted before completion");
        seal(&mut self.result);
        OrdKeyBatch {
            storage: Arc::new(self.result),
            description: self.description,
        }
    }
}

/// A cursor over an [`OrdKeyBatch`], presenting `()` as the single value of each key.
pub struct OrdKeyCursor<K, T, R> {
    storage: Arc<OrdKeyStorage<K, T, R>>,
    key_pos: usize,
    val_exhausted: bool,
}

impl<K: Data, T: Timestamp + Lattice, R: Semigroup> Cursor for OrdKeyCursor<K, T, R> {
    type Key = K;
    type Val = ();
    type Time = T;
    type Diff = R;

    fn key_valid(&self) -> bool {
        self.key_pos < self.storage.keys.len()
    }
    fn val_valid(&self) -> bool {
        self.key_valid() && !self.val_exhausted
    }
    fn key(&self) -> &K {
        &self.storage.keys[self.key_pos]
    }
    fn val(&self) -> &() {
        &()
    }
    fn map_times(&mut self, mut logic: impl FnMut(&T, &R)) {
        if self.val_valid() {
            let lo = self.storage.key_offs[self.key_pos];
            let hi = self.storage.key_offs[self.key_pos + 1];
            for (time, diff) in &self.storage.updates[lo..hi] {
                logic(time, diff);
            }
        }
    }
    fn step_key(&mut self) {
        if self.key_valid() {
            self.key_pos += 1;
            self.val_exhausted = false;
        }
    }
    fn seek_key(&mut self, key: &K) {
        let remaining = &self.storage.keys[self.key_pos..];
        self.key_pos += remaining.partition_point(|k| k < key);
        self.val_exhausted = false;
    }
    fn step_val(&mut self) {
        self.val_exhausted = true;
    }
    fn seek_val(&mut self, _val: &()) {}
    fn rewind_keys(&mut self) {
        self.key_pos = 0;
        self.val_exhausted = false;
    }
    fn rewind_vals(&mut self) {
        self.val_exhausted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::cursor_to_updates;

    #[test]
    fn key_batch_builds_and_navigates() {
        let mut builder = OrdKeyBuilder::with_capacity(4);
        builder.push(3u64, (), 0u64, 1isize);
        builder.push(1, (), 0, 1);
        builder.push(3, (), 1, -1);
        builder.push(1, (), 0, 1);
        let batch = builder.done(
            Antichain::from_elem(0),
            Antichain::from_elem(2),
            Antichain::from_elem(0),
        );
        let mut cursor = batch.cursor();
        let updates = cursor_to_updates(&mut cursor);
        assert_eq!(updates, vec![(1, (), 0, 2), (3, (), 0, 1), (3, (), 1, -1)]);

        let mut cursor = batch.cursor();
        cursor.seek_key(&2);
        assert_eq!(*cursor.key(), 3);
    }

    #[test]
    fn key_batch_merge_cancels() {
        let mut b1 = OrdKeyBuilder::with_capacity(2);
        b1.push(1u64, (), 0u64, 1isize);
        b1.push(2, (), 0, 1);
        let batch1 = b1.done(
            Antichain::from_elem(0),
            Antichain::from_elem(1),
            Antichain::from_elem(0),
        );
        let mut b2 = OrdKeyBuilder::with_capacity(1);
        b2.push(1u64, (), 1u64, -1isize);
        let batch2 = b2.done(
            Antichain::from_elem(1),
            Antichain::from_elem(2),
            Antichain::from_elem(0),
        );
        let mut merger = batch1.begin_merge(&batch2, AntichainRef::new(&[5u64]));
        let mut fuel = isize::MAX;
        merger.work(&batch1, &batch2, &mut fuel);
        let merged = merger.done(&batch1, &batch2);
        let mut cursor = merged.cursor();
        assert_eq!(cursor_to_updates(&mut cursor), vec![(2, (), 5, 1)]);
    }
}
