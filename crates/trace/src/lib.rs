//! Collection traces: the shared, multiversioned indices behind arrangements.
//!
//! A *collection trace* (paper §4.1) is the set of update triples `(data, time, diff)`
//! that define a collection at any time `t` by accumulating the diffs of updates whose
//! times are `<= t`. This crate commits to the paper's representation of a trace as an
//! append-only logical list of **immutable indexed batches**, physically maintained by an
//! LSM-like [`Spine`](spine::Spine) that merges batches of comparable size with a
//! configurable, *amortized* amount of effort per introduced batch (§4.2).
//!
//! The pieces:
//!
//! * [`Description`](description::Description) — the `lower`/`upper`/`since` frontiers
//!   that make a batch self-describing.
//! * [`OrdValBatch`](ord_batch::OrdValBatch) — an immutable batch of updates indexed by
//!   key, then value, each value carrying its `(time, diff)` history.
//! * [`OrdKeyBatch`](key_batch::OrdKeyBatch) — the simplified representation for
//!   collections whose records are just keys (paper §4.2, "Modularity").
//! * [`Cursor`](cursor::Cursor) and [`CursorList`](cursor::CursorList) — navigation over
//!   one batch or the union of many.
//! * [`Spine`](spine::Spine) — the amortized-merging trace, with logical compaction
//!   driven by reader frontiers (MVCC-style "vacuuming", §4.2 "Consolidation").
//! * [`StoredLayer`](stored::StoredLayer) — a sealed layer spilled to a `kpg_store`
//!   sorted-run file and read back through a streaming [`StoredCursor`](stored::StoredCursor),
//!   so a trace larger than its memory budget still answers through the same cursors.
//! * [`Semigroup`]/[`Abelian`](diff::Abelian)/[`Multiply`](diff::Multiply) — the algebra
//!   required of the `diff` component.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod consolidation;
pub mod cursor;
pub mod description;
pub mod diff;
pub mod key_batch;
pub mod ord_batch;
pub mod spine;
pub mod stored;

pub use consolidation::{consolidate, consolidate_updates};
pub use cursor::{Cursor, CursorList};
pub use description::Description;
pub use diff::{Abelian, Multiply, Semigroup};
pub use key_batch::OrdKeyBatch;
pub use ord_batch::OrdValBatch;
pub use spine::{MergeEffort, Spine};
pub use stored::{spill_batch, LayerCursor, StoreData, StoredCursor, StoredLayer};

use kpg_timestamp::{Antichain, AntichainRef, Lattice, Timestamp};

/// The requirements on data (keys and values) stored in traces.
///
/// `Ord` drives the sorted batch layout, `Hash` drives exchange routing, and
/// `Send + Sync + 'static` lets update buffers and shared batches cross worker channels.
pub trait Data: Clone + Ord + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static {}
impl<T: Clone + Ord + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static> Data for T {}

/// An immutable, navigable batch of update triples.
///
/// Batches are `Send` so that (reference-counted) batch handles can travel along dataflow
/// channels; the underlying storage is immutable and shared.
pub trait BatchReader: Clone + Send + 'static {
    /// The key component of updates.
    type Key: Data;
    /// The value component of updates.
    type Val: Data;
    /// The timestamp component of updates.
    type Time: Timestamp + Lattice;
    /// The difference component of updates.
    type Diff: Semigroup;
    /// The cursor type navigating this batch.
    type Cursor: Cursor<Key = Self::Key, Val = Self::Val, Time = Self::Time, Diff = Self::Diff>;

    /// A cursor positioned at the first key of the batch.
    fn cursor(&self) -> Self::Cursor;
    /// The number of updates in the batch.
    fn len(&self) -> usize;
    /// True iff the batch contains no updates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The batch's description: its lower/upper time bounds and compaction frontier.
    fn description(&self) -> &Description<Self::Time>;
    /// The lower frontier of times contained in the batch.
    fn lower(&self) -> AntichainRef<'_, Self::Time> {
        self.description().lower().borrow()
    }
    /// The upper frontier of times contained in the batch.
    fn upper(&self) -> AntichainRef<'_, Self::Time> {
        self.description().upper().borrow()
    }
}

/// A batch that can be built from updates and merged with other batches.
pub trait Batch: BatchReader {
    /// The builder type producing batches of this type.
    type Builder: Builder<
        Key = Self::Key,
        Val = Self::Val,
        Time = Self::Time,
        Diff = Self::Diff,
        Output = Self,
    >;
    /// The (fuel-based, resumable) merger type for batches of this type.
    type Merger: Merger<Self>;

    /// An empty batch covering the time interval `[lower, upper)`.
    fn empty(
        lower: Antichain<Self::Time>,
        upper: Antichain<Self::Time>,
        since: Antichain<Self::Time>,
    ) -> Self;

    /// Begins a merge of `self` with `other`, compacting times to `since`.
    ///
    /// The two batches must abut: `self.upper() == other.lower()`.
    fn begin_merge(&self, other: &Self, since: AntichainRef<'_, Self::Time>) -> Self::Merger;
}

/// Builds batches from (possibly unsorted, unconsolidated) update tuples.
pub trait Builder: Default {
    /// The key component of updates.
    type Key: Data;
    /// The value component of updates.
    type Val: Data;
    /// The timestamp component of updates.
    type Time: Timestamp + Lattice;
    /// The difference component of updates.
    type Diff: Semigroup;
    /// The batch type produced.
    type Output;

    /// A builder expecting roughly `capacity` updates.
    fn with_capacity(capacity: usize) -> Self;
    /// Adds one update tuple.
    fn push(&mut self, key: Self::Key, val: Self::Val, time: Self::Time, diff: Self::Diff);
    /// Finishes the batch, sorting and consolidating the buffered updates.
    fn done(
        self,
        lower: Antichain<Self::Time>,
        upper: Antichain<Self::Time>,
        since: Antichain<Self::Time>,
    ) -> Self::Output;
}

/// An in-progress merge of two batches that can be advanced with bounded effort.
///
/// The paper's amortized trace maintenance (§4.2) requires merges that can be paused and
/// resumed: each newly introduced batch contributes effort proportional to its size to
/// all in-progress merges, so a worker is never blocked on one large merge.
pub trait Merger<B: BatchReader> {
    /// Performs at most `fuel` units of merge work, decrementing `fuel` by the work done.
    ///
    /// When the merge completes, remaining fuel is left untouched and subsequent calls do
    /// nothing.
    fn work(&mut self, source1: &B, source2: &B, fuel: &mut isize);
    /// True iff the merge has completed.
    fn is_complete(&self) -> bool;
    /// Extracts the merged batch; panics if the merge is not complete.
    fn done(self, source1: &B, source2: &B) -> B;
}
