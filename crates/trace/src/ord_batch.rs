//! `OrdValBatch`: an immutable batch of updates indexed by key, then value.
//!
//! The storage is columnar: a sorted vector of keys, offsets into a vector of values, and
//! offsets into a flat vector of `(time, diff)` updates. Batches are wrapped in an `Arc`
//! so the batch stream and every trace reader share the same underlying memory (paper
//! §4.2, "Shared references").

use kpg_sync::Arc;

use crate::cursor::Cursor;
use crate::description::Description;
use crate::diff::Semigroup;
use crate::{Batch, BatchReader, Builder, Data, Merger};
use kpg_timestamp::{Antichain, AntichainRef, Lattice, Timestamp};

/// Columnar storage for an [`OrdValBatch`].
#[derive(Debug)]
pub struct OrdValStorage<K, V, T, R> {
    /// Sorted, distinct keys.
    pub keys: Vec<K>,
    /// `key_offs[i]..key_offs[i+1]` are the value indices of `keys[i]`.
    pub key_offs: Vec<usize>,
    /// Values, grouped by key and sorted within each key.
    pub vals: Vec<V>,
    /// `val_offs[j]..val_offs[j+1]` are the update indices of `vals[j]`.
    pub val_offs: Vec<usize>,
    /// `(time, diff)` histories, grouped by value.
    pub updates: Vec<(T, R)>,
}

impl<K, V, T, R> OrdValStorage<K, V, T, R> {
    fn empty() -> Self {
        OrdValStorage {
            keys: Vec::new(),
            key_offs: vec![0],
            vals: Vec::new(),
            val_offs: vec![0],
            updates: Vec::new(),
        }
    }
}

/// An immutable batch of `(key, val, time, diff)` updates, indexed by key then value.
#[derive(Debug)]
pub struct OrdValBatch<K, V, T, R> {
    storage: Arc<OrdValStorage<K, V, T, R>>,
    description: Description<T>,
}

impl<K, V, T, R> Clone for OrdValBatch<K, V, T, R>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        OrdValBatch {
            storage: Arc::clone(&self.storage),
            description: self.description.clone(),
        }
    }
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> OrdValBatch<K, V, T, R> {
    /// The shared storage underlying this batch.
    pub fn storage(&self) -> &OrdValStorage<K, V, T, R> {
        &self.storage
    }

    /// The number of distinct keys in the batch.
    pub fn key_count(&self) -> usize {
        self.storage.keys.len()
    }
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> BatchReader
    for OrdValBatch<K, V, T, R>
{
    type Key = K;
    type Val = V;
    type Time = T;
    type Diff = R;
    type Cursor = OrdValCursor<K, V, T, R>;

    fn cursor(&self) -> Self::Cursor {
        OrdValCursor::new(Arc::clone(&self.storage))
    }
    fn len(&self) -> usize {
        self.storage.updates.len()
    }
    fn description(&self) -> &Description<T> {
        &self.description
    }
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> Batch for OrdValBatch<K, V, T, R> {
    type Builder = OrdValBuilder<K, V, T, R>;
    type Merger = OrdValMerger<K, V, T, R>;

    fn empty(lower: Antichain<T>, upper: Antichain<T>, since: Antichain<T>) -> Self {
        OrdValBatch {
            storage: Arc::new(OrdValStorage::empty()),
            description: Description::new(lower, upper, since),
        }
    }

    fn begin_merge(&self, other: &Self, since: AntichainRef<'_, T>) -> Self::Merger {
        OrdValMerger::new(self, other, since.to_owned())
    }
}

/// The minimum unsorted-tail length before a builder re-consolidates its buffer.
///
/// Shared by [`OrdValBuilder`] and [`OrdKeyBuilder`](crate::key_batch::OrdKeyBuilder):
/// below this threshold the O(n log n) of a final sort is cheaper than the bookkeeping.
pub(crate) const BUILDER_CONSOLIDATE_MIN: usize = 256;

/// Builds an [`OrdValBatch`] from unsorted update tuples.
///
/// Consolidation is amortized: `buffer[..sorted]` is always sorted by `(key, val, time)`
/// with equal tuples coalesced, and whenever the unsorted tail grows to the size of that
/// prefix the whole buffer is re-consolidated (the sort is adaptive, so the sorted prefix
/// costs a merge, not a fresh sort). Each update therefore takes part in O(log n)
/// consolidations, the buffer stays at most linear in the number of *distinct* tuples
/// (paper §4.2, "partially evaluated merge sort"), and `done` only folds in the final
/// tail instead of sorting everything from scratch.
pub struct OrdValBuilder<K, V, T, R> {
    buffer: Vec<(K, V, T, R)>,
    /// Length of the sorted-and-consolidated prefix of `buffer`.
    sorted: usize,
}

impl<K, V, T, R> Default for OrdValBuilder<K, V, T, R> {
    fn default() -> Self {
        OrdValBuilder {
            buffer: Vec::new(),
            sorted: 0,
        }
    }
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> OrdValBuilder<K, V, T, R> {
    /// Sorts the buffer (a merge of the sorted prefix and the tail), coalesces equal
    /// `(key, val, time)` tuples, drops zero diffs, and marks the result sorted.
    fn consolidate_buffer(&mut self) {
        if self.sorted == self.buffer.len() {
            return;
        }
        self.buffer
            .sort_by(|a, b| (&a.0, &a.1, &a.2).cmp(&(&b.0, &b.1, &b.2)));
        let mut write = 0;
        let mut read = 0;
        while read < self.buffer.len() {
            let mut end = read + 1;
            while end < self.buffer.len()
                && self.buffer[end].0 == self.buffer[read].0
                && self.buffer[end].1 == self.buffer[read].1
                && self.buffer[end].2 == self.buffer[read].2
            {
                end += 1;
            }
            let (head, tail) = self.buffer.split_at_mut(read + 1);
            for other in &tail[..end - read - 1] {
                head[read].3.plus_equals(&other.3);
            }
            if !self.buffer[read].3.is_zero() {
                self.buffer.swap(write, read);
                write += 1;
            }
            read = end;
        }
        self.buffer.truncate(write);
        self.sorted = self.buffer.len();
    }

    /// The sorted-prefix length and buffer capacity, for amortization tests.
    #[doc(hidden)]
    pub fn buffer_state(&self) -> (usize, usize, usize) {
        (self.sorted, self.buffer.len(), self.buffer.capacity())
    }
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> Builder for OrdValBuilder<K, V, T, R> {
    type Key = K;
    type Val = V;
    type Time = T;
    type Diff = R;
    type Output = OrdValBatch<K, V, T, R>;

    fn with_capacity(capacity: usize) -> Self {
        OrdValBuilder {
            buffer: Vec::with_capacity(capacity),
            sorted: 0,
        }
    }

    fn push(&mut self, key: K, val: V, time: T, diff: R) {
        self.buffer.push((key, val, time, diff));
        if self.buffer.len() - self.sorted >= self.sorted.max(BUILDER_CONSOLIDATE_MIN) {
            self.consolidate_buffer();
        }
    }

    fn done(
        mut self,
        lower: Antichain<T>,
        upper: Antichain<T>,
        since: Antichain<T>,
    ) -> Self::Output {
        // Freshly minted batches keep their original times: the `since` frontier records
        // how far accumulations are valid, but times are only advanced lazily, during
        // merges. Advancing here would re-timestamp the live batch stream that operator
        // shells (and loop feedback paths) consume.
        self.consolidate_buffer();

        let mut storage = OrdValStorage::empty();
        for (key, val, time, diff) in self.buffer.iter() {
            push_update(&mut storage, key, val, time.clone(), diff.clone());
        }
        seal(&mut storage);
        OrdValBatch {
            storage: Arc::new(storage),
            description: Description::new(lower, upper, since),
        }
    }
}

/// Appends one consolidated update to storage under construction, opening new key/value
/// groups as needed. Requires updates to arrive in `(key, val, time)` order.
fn push_update<K: Data, V: Data, T: Timestamp, R: Semigroup>(
    storage: &mut OrdValStorage<K, V, T, R>,
    key: &K,
    val: &V,
    time: T,
    diff: R,
) {
    let new_key = storage.keys.last() != Some(key);
    if new_key {
        // Seal the previous key's value range.
        if !storage.keys.is_empty() {
            storage.key_offs.push(storage.vals.len());
        }
        storage.keys.push(key.clone());
    }
    // Within a key, updates arrive sorted by value, so an equal trailing value means the
    // same (key, val) group; an equal trailing value under a *different* key is covered by
    // `new_key`.
    let new_val = new_key || storage.vals.last() != Some(val);
    if new_val {
        if !storage.vals.is_empty() {
            storage.val_offs.push(storage.updates.len());
        }
        storage.vals.push(val.clone());
    }
    storage.updates.push((time, diff));
}

/// Seals the trailing offset vectors once all updates have been pushed.
fn seal<K, V, T, R>(storage: &mut OrdValStorage<K, V, T, R>) {
    if !storage.vals.is_empty() {
        storage.val_offs.push(storage.updates.len());
    }
    if !storage.keys.is_empty() {
        storage.key_offs.push(storage.vals.len());
    }
    debug_assert_eq!(storage.key_offs.len(), storage.keys.len() + 1);
    debug_assert_eq!(storage.val_offs.len(), storage.vals.len() + 1);
}

/// A fuel-based, resumable merger of two [`OrdValBatch`]es.
pub struct OrdValMerger<K, V, T, R> {
    key1: usize,
    key2: usize,
    result: OrdValStorage<K, V, T, R>,
    since: Antichain<T>,
    description: Description<T>,
    complete: bool,
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> OrdValMerger<K, V, T, R> {
    fn new(
        batch1: &OrdValBatch<K, V, T, R>,
        batch2: &OrdValBatch<K, V, T, R>,
        since: Antichain<T>,
    ) -> Self {
        let description = batch1
            .description()
            .merged_with(batch2.description(), since.clone());
        OrdValMerger {
            key1: 0,
            key2: 0,
            result: OrdValStorage::empty(),
            since,
            description,
            complete: false,
        }
    }

    /// Copies the key at `key_idx` of `source`, compacting its times to `self.since`.
    /// Returns the amount of work performed (updates touched).
    fn copy_key(&mut self, source: &OrdValStorage<K, V, T, R>, key_idx: usize) -> usize {
        let mut work = 0;
        let key = &source.keys[key_idx];
        let val_lo = source.key_offs[key_idx];
        let val_hi = source.key_offs[key_idx + 1];
        for val_idx in val_lo..val_hi {
            let val = &source.vals[val_idx];
            let upd_lo = source.val_offs[val_idx];
            let upd_hi = source.val_offs[val_idx + 1];
            let mut history: Vec<(T, R)> = source.updates[upd_lo..upd_hi].to_vec();
            work += history.len();
            compact_history(&mut history, self.since.borrow());
            for (time, diff) in history {
                push_update(&mut self.result, key, val, time, diff);
            }
        }
        work
    }

    /// Merges the key present at `key1` in `source1` and `key2` in `source2` (same key).
    fn merge_key(
        &mut self,
        source1: &OrdValStorage<K, V, T, R>,
        source2: &OrdValStorage<K, V, T, R>,
    ) -> usize {
        let mut work = 0;
        let key = source1.keys[self.key1].clone();
        let (mut v1, v1_hi) = (source1.key_offs[self.key1], source1.key_offs[self.key1 + 1]);
        let (mut v2, v2_hi) = (source2.key_offs[self.key2], source2.key_offs[self.key2 + 1]);
        while v1 < v1_hi || v2 < v2_hi {
            let take_from = if v1 >= v1_hi {
                2
            } else if v2 >= v2_hi {
                1
            } else {
                match source1.vals[v1].cmp(&source2.vals[v2]) {
                    std::cmp::Ordering::Less => 1,
                    std::cmp::Ordering::Greater => 2,
                    std::cmp::Ordering::Equal => 0,
                }
            };
            let mut history: Vec<(T, R)> = Vec::new();
            let val = match take_from {
                1 => {
                    let val = source1.vals[v1].clone();
                    history.extend_from_slice(
                        &source1.updates[source1.val_offs[v1]..source1.val_offs[v1 + 1]],
                    );
                    v1 += 1;
                    val
                }
                2 => {
                    let val = source2.vals[v2].clone();
                    history.extend_from_slice(
                        &source2.updates[source2.val_offs[v2]..source2.val_offs[v2 + 1]],
                    );
                    v2 += 1;
                    val
                }
                _ => {
                    let val = source1.vals[v1].clone();
                    history.extend_from_slice(
                        &source1.updates[source1.val_offs[v1]..source1.val_offs[v1 + 1]],
                    );
                    history.extend_from_slice(
                        &source2.updates[source2.val_offs[v2]..source2.val_offs[v2 + 1]],
                    );
                    v1 += 1;
                    v2 += 1;
                    val
                }
            };
            work += history.len();
            compact_history(&mut history, self.since.borrow());
            for (time, diff) in history {
                push_update(&mut self.result, &key, &val, time, diff);
            }
        }
        work
    }
}

/// Advances every time in `history` to `since` and consolidates equal times, dropping
/// zero diffs. This is the per-value unit of compaction performed during merges.
pub(crate) fn compact_history<T: Timestamp + Lattice, R: Semigroup>(
    history: &mut Vec<(T, R)>,
    since: AntichainRef<'_, T>,
) {
    if !since.is_empty() {
        for (time, _) in history.iter_mut() {
            time.advance_by(since);
        }
    }
    history.sort_by(|a, b| a.0.cmp(&b.0));
    let mut write = 0;
    let mut read = 0;
    while read < history.len() {
        let mut end = read + 1;
        while end < history.len() && history[end].0 == history[read].0 {
            end += 1;
        }
        let (head, tail) = history.split_at_mut(read + 1);
        for other in &tail[..end - read - 1] {
            head[read].1.plus_equals(&other.1);
        }
        if !history[read].1.is_zero() {
            history.swap(write, read);
            write += 1;
        }
        read = end;
    }
    history.truncate(write);
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> Merger<OrdValBatch<K, V, T, R>>
    for OrdValMerger<K, V, T, R>
{
    fn work(
        &mut self,
        source1: &OrdValBatch<K, V, T, R>,
        source2: &OrdValBatch<K, V, T, R>,
        fuel: &mut isize,
    ) {
        let storage1 = source1.storage();
        let storage2 = source2.storage();
        while *fuel > 0 && !self.complete {
            let have1 = self.key1 < storage1.keys.len();
            let have2 = self.key2 < storage2.keys.len();
            let work = match (have1, have2) {
                (false, false) => {
                    self.complete = true;
                    0
                }
                (true, false) => {
                    let w = self.copy_key(storage1, self.key1);
                    self.key1 += 1;
                    w
                }
                (false, true) => {
                    let w = self.copy_key(storage2, self.key2);
                    self.key2 += 1;
                    w
                }
                (true, true) => match storage1.keys[self.key1].cmp(&storage2.keys[self.key2]) {
                    std::cmp::Ordering::Less => {
                        let w = self.copy_key(storage1, self.key1);
                        self.key1 += 1;
                        w
                    }
                    std::cmp::Ordering::Greater => {
                        let w = self.copy_key(storage2, self.key2);
                        self.key2 += 1;
                        w
                    }
                    std::cmp::Ordering::Equal => {
                        let w = self.merge_key(storage1, storage2);
                        self.key1 += 1;
                        self.key2 += 1;
                        w
                    }
                },
            };
            // Each key costs at least one unit so empty batches still complete promptly.
            *fuel -= work.max(1) as isize;
        }
    }

    fn is_complete(&self) -> bool {
        self.complete
    }

    fn done(
        mut self,
        _source1: &OrdValBatch<K, V, T, R>,
        _source2: &OrdValBatch<K, V, T, R>,
    ) -> OrdValBatch<K, V, T, R> {
        assert!(self.complete, "merge extracted before completion");
        seal(&mut self.result);
        OrdValBatch {
            storage: Arc::new(self.result),
            description: self.description,
        }
    }
}

/// A cursor over an [`OrdValBatch`].
pub struct OrdValCursor<K, V, T, R> {
    storage: Arc<OrdValStorage<K, V, T, R>>,
    key_pos: usize,
    val_pos: usize,
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> OrdValCursor<K, V, T, R> {
    fn new(storage: Arc<OrdValStorage<K, V, T, R>>) -> Self {
        OrdValCursor {
            storage,
            key_pos: 0,
            val_pos: 0,
        }
    }

    fn val_bounds(&self) -> (usize, usize) {
        (
            self.storage.key_offs[self.key_pos],
            self.storage.key_offs[self.key_pos + 1],
        )
    }

    fn reset_vals(&mut self) {
        if self.key_valid() {
            self.val_pos = self.storage.key_offs[self.key_pos];
        }
    }
}

impl<K: Data, V: Data, T: Timestamp + Lattice, R: Semigroup> Cursor for OrdValCursor<K, V, T, R> {
    type Key = K;
    type Val = V;
    type Time = T;
    type Diff = R;

    fn key_valid(&self) -> bool {
        self.key_pos < self.storage.keys.len()
    }
    fn val_valid(&self) -> bool {
        self.key_valid() && self.val_pos < self.val_bounds().1
    }
    fn key(&self) -> &K {
        &self.storage.keys[self.key_pos]
    }
    fn val(&self) -> &V {
        &self.storage.vals[self.val_pos]
    }
    fn map_times(&mut self, mut logic: impl FnMut(&T, &R)) {
        if self.val_valid() {
            let lo = self.storage.val_offs[self.val_pos];
            let hi = self.storage.val_offs[self.val_pos + 1];
            for (time, diff) in &self.storage.updates[lo..hi] {
                logic(time, diff);
            }
        }
    }
    fn step_key(&mut self) {
        if self.key_valid() {
            self.key_pos += 1;
            self.reset_vals();
        }
    }
    fn seek_key(&mut self, key: &K) {
        let remaining = &self.storage.keys[self.key_pos..];
        self.key_pos += remaining.partition_point(|k| k < key);
        self.reset_vals();
    }
    fn step_val(&mut self) {
        if self.val_valid() {
            self.val_pos += 1;
        }
    }
    fn seek_val(&mut self, val: &V) {
        if self.key_valid() {
            let (lo, hi) = self.val_bounds();
            let start = self.val_pos.max(lo);
            let remaining = &self.storage.vals[start..hi];
            self.val_pos = start + remaining.partition_point(|v| v < val);
        }
    }
    fn rewind_keys(&mut self) {
        self.key_pos = 0;
        self.reset_vals();
    }
    fn rewind_vals(&mut self) {
        self.reset_vals();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::cursor_to_updates;

    fn batch_from(
        updates: Vec<(u64, &'static str, u64, isize)>,
        upper: u64,
    ) -> OrdValBatch<u64, &'static str, u64, isize> {
        let mut builder = OrdValBuilder::with_capacity(updates.len());
        for (k, v, t, r) in updates {
            builder.push(k, v, t, r);
        }
        builder.done(
            Antichain::from_elem(0),
            Antichain::from_elem(upper),
            Antichain::from_elem(0),
        )
    }

    #[test]
    fn builder_sorts_and_consolidates() {
        let batch = batch_from(
            vec![
                (2, "b", 0, 1),
                (1, "a", 0, 1),
                (1, "a", 0, 2),
                (1, "z", 1, 1),
                (3, "c", 0, 1),
                (3, "c", 0, -1),
            ],
            2,
        );
        let mut cursor = batch.cursor();
        let updates = cursor_to_updates(&mut cursor);
        assert_eq!(
            updates,
            vec![(1, "a", 0, 3), (1, "z", 1, 1), (2, "b", 0, 1),]
        );
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.key_count(), 2);
    }

    #[test]
    fn cursor_seeks_keys_and_vals() {
        let batch = batch_from(
            vec![
                (1, "a", 0, 1),
                (1, "b", 0, 1),
                (5, "a", 0, 1),
                (9, "x", 0, 1),
            ],
            1,
        );
        let mut cursor = batch.cursor();
        cursor.seek_key(&4);
        assert!(cursor.key_valid());
        assert_eq!(*cursor.key(), 5);
        cursor.seek_key(&9);
        assert_eq!(*cursor.key(), 9);
        cursor.seek_key(&10);
        assert!(!cursor.key_valid());

        let mut cursor = batch.cursor();
        cursor.seek_val(&"b");
        assert_eq!(*cursor.val(), "b");
        cursor.rewind_vals();
        assert_eq!(*cursor.val(), "a");
    }

    #[test]
    fn same_value_under_different_keys() {
        let batch = batch_from(vec![(1, "a", 0, 1), (2, "a", 0, 1)], 1);
        let mut cursor = batch.cursor();
        let updates = cursor_to_updates(&mut cursor);
        assert_eq!(updates, vec![(1, "a", 0, 1), (2, "a", 0, 1)]);
        assert_eq!(batch.key_count(), 2);
    }

    #[test]
    fn merge_combines_and_cancels() {
        let batch1 = batch_from(vec![(1, "a", 0, 1), (2, "b", 0, 1)], 1);
        let mut builder = OrdValBuilder::with_capacity(2);
        builder.push(1, "a", 1, -1);
        builder.push(3, "c", 1, 1);
        let batch2 = builder.done(
            Antichain::from_elem(1),
            Antichain::from_elem(2),
            Antichain::from_elem(0),
        );

        // Merge with a since of 1: the (1,"a") history becomes +1 at 1 and -1 at 1 = zero.
        let mut merger = batch1.begin_merge(&batch2, AntichainRef::new(&[1u64]));
        let mut fuel = isize::MAX;
        merger.work(&batch1, &batch2, &mut fuel);
        assert!(merger.is_complete());
        let merged = merger.done(&batch1, &batch2);
        let mut cursor = merged.cursor();
        let updates = cursor_to_updates(&mut cursor);
        assert_eq!(updates, vec![(2, "b", 1, 1), (3, "c", 1, 1)]);
        assert_eq!(merged.description().lower().elements(), &[0]);
        assert_eq!(merged.description().upper().elements(), &[2]);
    }

    #[test]
    fn merge_respects_fuel() {
        let batch1 = batch_from((0..100).map(|i| (i, "a", 0, 1isize)).collect(), 1);
        let mut builder = OrdValBuilder::with_capacity(100);
        for i in 0..100u64 {
            builder.push(i, "b", 1, 1isize);
        }
        let batch2 = builder.done(
            Antichain::from_elem(1),
            Antichain::from_elem(2),
            Antichain::from_elem(0),
        );
        let mut merger = batch1.begin_merge(&batch2, AntichainRef::new(&[0u64]));
        let mut fuel = 10isize;
        merger.work(&batch1, &batch2, &mut fuel);
        assert!(!merger.is_complete());
        assert!(fuel <= 0);
        let mut fuel = isize::MAX;
        merger.work(&batch1, &batch2, &mut fuel);
        assert!(merger.is_complete());
        let merged = merger.done(&batch1, &batch2);
        assert_eq!(merged.len(), 200);
    }

    #[test]
    fn empty_batch_has_no_keys() {
        let batch = OrdValBatch::<u64, u64, u64, isize>::empty(
            Antichain::from_elem(0),
            Antichain::from_elem(0),
            Antichain::from_elem(0),
        );
        assert!(batch.is_empty());
        assert!(!batch.cursor().key_valid());
    }
}
