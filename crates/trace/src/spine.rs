//! The spine: an LSM-like trace of immutable batches with amortized merging.
//!
//! A [`Spine`] is the index half of an arrangement (paper §4.2): an append-only logical
//! list of batches, physically maintained as a small number of layers by merging adjacent
//! batches of comparable size. Merges are *amortized*: each newly introduced batch
//! contributes a bounded amount of effort to every in-progress merge, so the worker thread
//! is never blocked on one large merge (the "Amortized trace maintenance" paragraph and
//! the Fig. 6e microbenchmark).
//!
//! The spine also tracks the *logical compaction frontier* (`since`): the lower bound of
//! all reader frontiers. Merges advance update times to this frontier and consolidate
//! updates that become indistinguishable, the analogue of MVCC vacuuming.

use std::io;
use std::path::Path;

use crate::cursor::CursorList;
use crate::stored::{spill_batch, LayerCursor, StoreData, StoredLayer};
use crate::{Batch, Merger};
use kpg_timestamp::{Antichain, AntichainRef, Timestamp};

/// How much merge effort the spine applies per introduced batch.
///
/// The paper observes (§6.5, Fig. 6e) that eager merging trades latency for throughput,
/// while lazy merging keeps more batches open and shifts the latency distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeEffort {
    /// Complete every merge as soon as it is initiated.
    Eager,
    /// Apply a proportionality constant of four per introduced update.
    ///
    /// The paper's charging argument shows a constant of two suffices for merges to
    /// complete before their results are next required; we default to four to leave
    /// headroom for the per-key granularity of our mergers.
    Default,
    /// Apply a proportionality constant of one per introduced update.
    Lazy,
}

impl MergeEffort {
    fn fuel_for(&self, batch_len: usize) -> isize {
        match self {
            MergeEffort::Eager => isize::MAX,
            MergeEffort::Default => (4 * batch_len + 64) as isize,
            MergeEffort::Lazy => (batch_len + 16) as isize,
        }
    }
}

enum Layer<B: Batch> {
    /// A settled batch.
    Single(B),
    /// Two abutting batches being merged, with the in-progress merger.
    Merging(B, B, B::Merger),
    /// A settled batch spilled to a sorted-run file; only its handle stays resident.
    /// Stored layers never participate in merges (compaction of spilled runs is a
    /// follow-on); they are read through streaming cursors.
    Stored(StoredLayer<B>),
    /// Transient placeholder installed while a layer's contents are moved out by value.
    /// Never observable outside [`Spine::apply_fuel`] / [`Spine::consider_merges`]; it
    /// exists so extraction does not have to allocate an empty batch.
    Taken,
}

impl<B: Batch> Layer<B> {
    fn len(&self) -> usize {
        match self {
            Layer::Single(batch) => batch.len(),
            Layer::Merging(a, b, _) => a.len() + b.len(),
            Layer::Stored(stored) => stored.len(),
            Layer::Taken => unreachable!("transient layer observed"),
        }
    }
}

/// An LSM-like trace of immutable batches with amortized merging and logical compaction.
pub struct Spine<B: Batch> {
    /// Layers ordered from oldest (largest) to newest (smallest).
    layers: Vec<Layer<B>>,
    since: Antichain<B::Time>,
    upper: Antichain<B::Time>,
    effort: MergeEffort,
    /// Count of updates ever introduced, for reporting.
    inserted: usize,
}

impl<B: Batch> Spine<B> {
    /// An empty spine with the given merge effort.
    pub fn new(effort: MergeEffort) -> Self {
        Spine {
            layers: Vec::new(),
            since: Antichain::from_elem(B::Time::minimum()),
            upper: Antichain::from_elem(B::Time::minimum()),
            effort,
            inserted: 0,
        }
    }

    /// The logical compaction frontier: accumulations are correct only at times in
    /// advance of this frontier.
    pub fn since(&self) -> AntichainRef<'_, B::Time> {
        self.since.borrow()
    }

    /// The upper frontier of batches absorbed so far.
    pub fn upper(&self) -> AntichainRef<'_, B::Time> {
        self.upper.borrow()
    }

    /// The merge effort configuration.
    pub fn effort(&self) -> MergeEffort {
        self.effort
    }

    /// The number of physical layers currently held (settled or merging).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The number of physical batches currently held (a merging layer holds two).
    pub fn batch_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Single(_) => 1,
                Layer::Merging(..) => 2,
                Layer::Stored(_) => 1,
                Layer::Taken => unreachable!("transient layer observed"),
            })
            .sum()
    }

    /// The number of layers spilled to sorted-run files.
    pub fn stored_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, Layer::Stored(_)))
            .count()
    }

    /// The number of updates held by in-memory layers only (the spine's resident
    /// footprint; [`Spine::len`] additionally counts spilled updates).
    pub fn in_memory_len(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| !matches!(l, Layer::Stored(_)))
            .map(|l| l.len())
            .sum()
    }

    /// The number of updates currently held across all batches.
    pub fn len(&self) -> usize {
        self.layers.iter().map(|l| l.len()).sum()
    }

    /// True iff the spine holds no updates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The total number of updates ever inserted (before compaction).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Applies `logic` to every batch, oldest first. A spilled layer is materialized
    /// back into a transient in-memory batch for the call — use [`Spine::cursor`] when
    /// streaming access suffices.
    pub fn map_batches(&self, mut logic: impl FnMut(&B)) {
        for layer in self.layers.iter() {
            match layer {
                Layer::Single(batch) => logic(batch),
                Layer::Merging(a, b, _) => {
                    logic(a);
                    logic(b);
                }
                Layer::Stored(stored) => logic(&stored.materialize()),
                Layer::Taken => unreachable!("transient layer observed"),
            }
        }
    }

    /// A cursor over the union of all batches in the spine. Spilled layers are read
    /// through streaming cursors that merge transparently with in-memory ones.
    pub fn cursor(&self) -> CursorList<LayerCursor<B>> {
        let mut cursors = Vec::with_capacity(self.layers.len() + 1);
        for layer in self.layers.iter() {
            match layer {
                Layer::Single(batch) => cursors.push(LayerCursor::Mem(batch.cursor())),
                Layer::Merging(a, b, _) => {
                    cursors.push(LayerCursor::Mem(a.cursor()));
                    cursors.push(LayerCursor::Mem(b.cursor()));
                }
                Layer::Stored(stored) => {
                    cursors.push(LayerCursor::Stored(Box::new(stored.cursor())));
                }
                Layer::Taken => unreachable!("transient layer observed"),
            }
        }
        CursorList::new(cursors)
    }

    /// Advances the logical compaction frontier.
    ///
    /// The caller (the arrangement's trace-handle bookkeeping) must pass the lower bound
    /// of all reader frontiers; future merges will advance times to this frontier and
    /// consolidate. The frontier may only advance.
    pub fn set_logical_compaction(&mut self, frontier: AntichainRef<'_, B::Time>) {
        debug_assert!(
            frontier.iter().all(|t| self.since.less_equal(t)) || self.since.is_empty(),
            "logical compaction frontier may only advance: {:?} -> {:?}",
            self.since,
            frontier.elements(),
        );
        self.since = frontier.to_owned();
    }

    /// Inserts a batch. The batch's lower frontier must equal the spine's current upper.
    pub fn insert(&mut self, batch: B) {
        assert!(
            batch.description().lower().same_as(&self.upper),
            "batch must abut the spine: batch.lower = {:?}, spine.upper = {:?}",
            batch.description().lower(),
            self.upper,
        );
        self.upper = batch.description().upper().clone();
        self.inserted += batch.len();
        let fuel_basis = batch.len();
        self.layers.push(Layer::Single(batch));
        self.maintain(fuel_basis);
    }

    /// Applies additional merge effort, as if a batch of `effort_basis` updates had been
    /// introduced. Useful for making progress on merges while otherwise idle.
    pub fn exert(&mut self, effort_basis: usize) {
        self.maintain(effort_basis);
    }

    /// Starts eligible merges and fuels in-progress ones, looping while completions make
    /// further merges eligible. This single path serves every effort level: `Eager` fuel
    /// is unbounded, so the loop drives all merges (including transitively enabled ones)
    /// to completion; bounded efforts stop as soon as a fuel application completes
    /// nothing, leaving the remainder for later introductions.
    fn maintain(&mut self, effort_basis: usize) {
        loop {
            self.consider_merges();
            if !self.apply_fuel(effort_basis) {
                break;
            }
        }
    }

    /// Gives every in-progress merge its share of fuel; installs completed merges.
    /// Returns true iff at least one merge completed.
    fn apply_fuel(&mut self, batch_len: usize) -> bool {
        let mut completed = false;
        for layer in self.layers.iter_mut() {
            if let Layer::Merging(a, b, merger) = layer {
                let mut fuel = self.effort.fuel_for(batch_len);
                merger.work(a, b, &mut fuel);
                if merger.is_complete() {
                    // Move the merge out by value (no placeholder batch allocation) and
                    // install the merged result.
                    let Layer::Merging(a, b, merger) = std::mem::replace(layer, Layer::Taken)
                    else {
                        unreachable!("layer changed variant underfoot");
                    };
                    *layer = Layer::Single(merger.done(&a, &b));
                    completed = true;
                }
            }
        }
        completed
    }

    /// Starts merges between adjacent settled layers of comparable size.
    ///
    /// Scans newest to oldest; a merge is started when the older neighbour is at most
    /// twice the size of the newer layer, which keeps the number of layers logarithmic in
    /// the number of distinct updates. Merges only *start* here; all completion goes
    /// through [`Spine::apply_fuel`].
    fn consider_merges(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            let mut index = self.layers.len();
            while index >= 2 {
                index -= 1;
                let older = index - 1;
                let start_merge = match (&self.layers[older], &self.layers[index]) {
                    (Layer::Single(a), Layer::Single(b)) => a.len() <= 2 * b.len().max(1),
                    _ => false,
                };
                if start_merge {
                    let newer_layer = self.layers.remove(index);
                    let older_layer = std::mem::replace(&mut self.layers[older], Layer::Taken);
                    let (Layer::Single(a), Layer::Single(b)) = (older_layer, newer_layer) else {
                        unreachable!("layer changed variant underfoot");
                    };
                    let merger = a.begin_merge(&b, self.since.borrow());
                    self.layers[older] = Layer::Merging(a, b, merger);
                    changed = true;
                    // After restructuring, restart the scan from the end.
                    break;
                }
            }
        }
    }
}

impl<B: Batch> Spine<B>
where
    B::Key: StoreData,
    B::Val: StoreData,
    B::Time: StoreData,
    B::Diff: StoreData,
{
    /// Spills the oldest settled in-memory layer to a sorted-run file at `path`.
    ///
    /// Returns `Ok(false)` without touching the disk when there is nothing to spill:
    /// every layer is already stored, or the oldest in-memory layer is mid-merge (it
    /// will become spillable when the merge completes). On I/O failure the layer stays
    /// in memory and the error is returned.
    pub fn spill_oldest(&mut self, path: &Path) -> io::Result<bool> {
        let Some(position) = self
            .layers
            .iter()
            .position(|l| !matches!(l, Layer::Stored(_)))
        else {
            return Ok(false);
        };
        if !matches!(self.layers[position], Layer::Single(_)) {
            return Ok(false);
        }
        let Layer::Single(batch) = std::mem::replace(&mut self.layers[position], Layer::Taken)
        else {
            unreachable!("layer changed variant underfoot");
        };
        match spill_batch(&batch, path) {
            Ok(stored) => {
                self.layers[position] = Layer::Stored(stored);
                Ok(true)
            }
            Err(error) => {
                self.layers[position] = Layer::Single(batch);
                Err(error)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{cursor_to_updates, Cursor};
    use crate::ord_batch::{OrdValBatch, OrdValBuilder};
    use crate::{BatchReader, Builder};

    type TestBatch = OrdValBatch<u64, u64, u64, isize>;

    fn batch(lower: u64, upper: u64, updates: Vec<(u64, u64, u64, isize)>) -> TestBatch {
        let mut builder = OrdValBuilder::with_capacity(updates.len());
        for (k, v, t, r) in updates {
            builder.push(k, v, t, r);
        }
        builder.done(
            Antichain::from_elem(lower),
            Antichain::from_elem(upper),
            Antichain::from_elem(0),
        )
    }

    #[test]
    fn spine_accumulates_batches() {
        let mut spine = Spine::new(MergeEffort::Default);
        spine.insert(batch(0, 1, vec![(1, 10, 0, 1), (2, 20, 0, 1)]));
        spine.insert(batch(1, 2, vec![(1, 10, 1, -1), (3, 30, 1, 1)]));
        let mut cursor = spine.cursor();
        let mut updates = cursor_to_updates(&mut cursor);
        updates.sort();
        assert_eq!(
            updates,
            vec![(1, 10, 0, 1), (1, 10, 1, -1), (2, 20, 0, 1), (3, 30, 1, 1),]
        );
        assert_eq!(spine.len(), 4);
        assert_eq!(spine.upper().elements(), &[2]);
    }

    #[test]
    #[should_panic(expected = "abut")]
    fn spine_rejects_gaps() {
        let mut spine = Spine::new(MergeEffort::Default);
        spine.insert(batch(1, 2, vec![(1, 1, 1, 1)]));
    }

    #[test]
    fn spine_keeps_few_layers() {
        let mut spine = Spine::new(MergeEffort::Eager);
        for epoch in 0..256u64 {
            spine.insert(batch(epoch, epoch + 1, vec![(epoch % 16, epoch, epoch, 1)]));
        }
        assert_eq!(spine.len(), 256);
        // Eager merging keeps the layer count logarithmic; allow generous slack.
        assert!(
            spine.layer_count() <= 12,
            "expected few layers, got {}",
            spine.layer_count()
        );
    }

    #[test]
    fn spine_amortized_merging_eventually_settles() {
        let mut spine = Spine::new(MergeEffort::Lazy);
        for epoch in 0..128u64 {
            spine.insert(batch(epoch, epoch + 1, vec![(epoch % 8, 0, epoch, 1)]));
        }
        // Drive outstanding merges to completion with idle effort.
        for _ in 0..64 {
            spine.exert(1024);
        }
        assert_eq!(spine.len(), 128);
        assert!(
            spine.layer_count() <= 12,
            "expected merges to settle, got {} layers",
            spine.layer_count()
        );
    }

    #[test]
    fn spine_compaction_consolidates_history() {
        let mut spine = Spine::new(MergeEffort::Eager);
        // Key 1 value 10 is inserted and removed across epochs; key 2 persists.
        spine.insert(batch(0, 1, vec![(1, 10, 0, 1), (2, 20, 0, 1)]));
        spine.insert(batch(1, 2, vec![(1, 10, 1, -1)]));
        spine.set_logical_compaction(AntichainRef::new(&[2u64]));
        // Insert more batches so merges (with compaction) occur.
        spine.insert(batch(2, 3, vec![(3, 30, 2, 1)]));
        spine.insert(batch(3, 4, vec![(4, 40, 3, 1)]));
        spine.insert(batch(4, 5, vec![(5, 50, 4, 1)]));
        for _ in 0..16 {
            spine.exert(1024);
        }
        // After compaction to time 2, the +1/-1 history of (1,10) cancels entirely.
        let mut cursor = spine.cursor();
        cursor.seek_key(&1);
        let mut found = false;
        if cursor.key_valid() && *cursor.key() == 1 {
            cursor.map_times(|_, _| found = true);
        }
        assert!(!found, "cancelled history should vanish after compaction");
        // Other keys are still present with their full weight.
        let mut cursor = spine.cursor();
        cursor.seek_key(&2);
        assert_eq!(*cursor.key(), 2);
        assert_eq!(cursor.accumulate_until(&10), Some(1));
    }

    fn temp_run_dir(tag: &str) -> std::path::PathBuf {
        use kpg_sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("kpg-spine-{tag}-{}-{unique}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spilled_layers_answer_like_memory() {
        let mut spine = Spine::new(MergeEffort::Lazy);
        for epoch in 0..32u64 {
            spine.insert(batch(
                epoch,
                epoch + 1,
                vec![(epoch % 8, epoch, epoch, 1), (100 + epoch, 7, epoch, 1)],
            ));
        }
        for _ in 0..64 {
            spine.exert(1024);
        }
        let mut expected = cursor_to_updates(&mut spine.cursor());
        expected.sort();

        let dir = temp_run_dir("answers");
        let mut spilled = 0usize;
        while spine
            .spill_oldest(&dir.join(format!("layer-{spilled}.run")))
            .unwrap()
        {
            spilled += 1;
        }
        assert!(spilled >= 1, "expected at least one spilled layer");
        assert_eq!(spine.stored_layer_count(), spilled);
        assert_eq!(spine.in_memory_len(), 0, "every settled layer should spill");
        assert_eq!(spine.len(), 64);

        let mut observed = cursor_to_updates(&mut spine.cursor());
        observed.sort();
        assert_eq!(observed, expected);

        // Seeks work across stored layers too.
        let mut cursor = spine.cursor();
        cursor.seek_key(&107);
        assert!(cursor.key_valid());
        assert_eq!(*cursor.key(), 107);
        assert_eq!(cursor.accumulate_until(&100), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spine_accepts_inserts_after_spilling() {
        let dir = temp_run_dir("grow");
        let mut spine = Spine::new(MergeEffort::Eager);
        spine.insert(batch(0, 1, vec![(1, 10, 0, 1), (2, 20, 0, 1)]));
        assert!(spine.spill_oldest(&dir.join("layer-0.run")).unwrap());
        // A fully spilled spine reports no spillable layer rather than erroring.
        assert!(!spine.spill_oldest(&dir.join("layer-1.run")).unwrap());
        spine.insert(batch(1, 2, vec![(1, 10, 1, -1), (3, 30, 1, 1)]));
        let mut observed = cursor_to_updates(&mut spine.cursor());
        observed.sort();
        assert_eq!(
            observed,
            vec![(1, 10, 0, 1), (1, 10, 1, -1), (2, 20, 0, 1), (3, 30, 1, 1)]
        );
        // map_batches materializes the stored layer for whole-batch consumers.
        let mut total = 0;
        spine.map_batches(|batch| total += batch.len());
        assert_eq!(total, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spine_handles_empty_batches() {
        let mut spine = Spine::new(MergeEffort::Default);
        spine.insert(batch(0, 1, vec![(1, 1, 0, 1)]));
        for epoch in 1..50u64 {
            spine.insert(batch(epoch, epoch + 1, vec![]));
        }
        assert_eq!(spine.len(), 1);
        assert_eq!(spine.upper().elements(), &[50]);
        assert!(spine.layer_count() <= 4);
    }
}
