//! Spilled spine layers: sealed batches evicted to sorted-run files.
//!
//! The LSM discipline of the [`Spine`](crate::spine::Spine) keeps every layer in
//! memory. When an arrangement outgrows its budget, the spine can *spill* its oldest
//! settled layer to an immutable sorted-run file (written by `kpg_store`) and keep only
//! a [`StoredLayer`] handle: the batch's description, its sparse first-key index, and a
//! decoder. The read path then streams the file block by block through a
//! [`StoredCursor`] that merges with in-memory layers inside the ordinary
//! [`CursorList`](crate::cursor::CursorList) — operators never learn whether a layer
//! lives in memory or on disk.
//!
//! Serialization goes through [`StoreData`], a small total codec: `store` appends a
//! self-delimiting encoding, `load` reads it back or returns `None` on truncation or
//! malformed input. One run-file entry is the concatenation `key ++ val ++ time ++
//! diff`, so entries of a sorted batch are themselves sorted byte strings grouped by
//! key, exactly what the run format's key-boundary blocks expect.

use kpg_sync::Arc;
use std::io;
use std::path::{Path, PathBuf};

use kpg_store::run::DEFAULT_BLOCK_BYTES;
use kpg_store::{RunReader, RunWriter};
use kpg_timestamp::time::MAX_DEPTH;
use kpg_timestamp::Time;

use crate::cursor::Cursor;
use crate::description::Description;
use crate::{Batch, BatchReader, Builder};

/// A total, self-delimiting byte codec for data spilled to sorted-run files.
///
/// `load` must consume exactly the bytes `store` produced and reject truncation with
/// `None` (never panic): spilled files are re-verified by CRC, but the decoder is the
/// last line of defense and also what recovery-oriented tests drive byte by byte.
/// Implementations must be *order-agnostic* only in the sense that encoding is
/// deterministic; the spine spills already-sorted batches, so no order on the encoded
/// bytes themselves is required.
pub trait StoreData: Sized {
    /// Appends a self-delimiting encoding of `self`.
    fn store(&self, bytes: &mut Vec<u8>);
    /// Decodes a value at `*pos`, advancing it; `None` on truncation or bad input.
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self>;
}

macro_rules! store_le_int {
    ($($ty:ty),*) => {$(
        impl StoreData for $ty {
            fn store(&self, bytes: &mut Vec<u8>) {
                bytes.extend_from_slice(&self.to_le_bytes());
            }
            fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
                const WIDTH: usize = std::mem::size_of::<$ty>();
                let slice = bytes.get(*pos..*pos + WIDTH)?;
                *pos += WIDTH;
                Some(<$ty>::from_le_bytes(slice.try_into().expect("sized slice")))
            }
        }
    )*};
}

store_le_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl StoreData for usize {
    fn store(&self, bytes: &mut Vec<u8>) {
        (*self as u64).store(bytes);
    }
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        usize::try_from(u64::load(bytes, pos)?).ok()
    }
}

impl StoreData for isize {
    fn store(&self, bytes: &mut Vec<u8>) {
        (*self as i64).store(bytes);
    }
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        isize::try_from(i64::load(bytes, pos)?).ok()
    }
}

impl StoreData for bool {
    fn store(&self, bytes: &mut Vec<u8>) {
        bytes.push(*self as u8);
    }
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        match u8::load(bytes, pos)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl StoreData for () {
    fn store(&self, _bytes: &mut Vec<u8>) {}
    fn load(_bytes: &[u8], _pos: &mut usize) -> Option<Self> {
        Some(())
    }
}

impl StoreData for String {
    fn store(&self, bytes: &mut Vec<u8>) {
        (self.len() as u64).store(bytes);
        bytes.extend_from_slice(self.as_bytes());
    }
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let length = usize::load(bytes, pos)?;
        let slice = bytes.get(*pos..pos.checked_add(length)?)?;
        *pos += length;
        String::from_utf8(slice.to_vec()).ok()
    }
}

impl<T: StoreData> StoreData for Vec<T> {
    fn store(&self, bytes: &mut Vec<u8>) {
        (self.len() as u64).store(bytes);
        for item in self {
            item.store(bytes);
        }
    }
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let count = usize::load(bytes, pos)?;
        // An adversarial count cannot allocate past the bytes that must back it.
        let mut items = Vec::with_capacity(count.min(bytes.len().saturating_sub(*pos)));
        for _ in 0..count {
            items.push(T::load(bytes, pos)?);
        }
        Some(items)
    }
}

macro_rules! store_tuple {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: StoreData),+> StoreData for ($($name,)+) {
            fn store(&self, bytes: &mut Vec<u8>) {
                let ($($name,)+) = self;
                $($name.store(bytes);)+
            }
            fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
                $(let $name = $name::load(bytes, pos)?;)+
                Some(($($name,)+))
            }
        }
    };
}

store_tuple!(A B);
store_tuple!(A B C);
store_tuple!(A B C D);

impl StoreData for Time {
    fn store(&self, bytes: &mut Vec<u8>) {
        for coord in self.coords() {
            coord.store(bytes);
        }
    }
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let mut coords = [0u64; MAX_DEPTH];
        for coord in coords.iter_mut() {
            *coord = u64::load(bytes, pos)?;
        }
        Some(Time::from_coords(coords))
    }
}

/// One run-file entry decoded back into an update tuple.
type Entry<B> = (
    <B as BatchReader>::Key,
    <B as BatchReader>::Val,
    <B as BatchReader>::Time,
    <B as BatchReader>::Diff,
);

fn decode_entry<K, V, T, R>(bytes: &[u8]) -> Option<(K, V, T, R)>
where
    K: StoreData,
    V: StoreData,
    T: StoreData,
    R: StoreData,
{
    let mut pos = 0;
    let key = K::load(bytes, &mut pos)?;
    let val = V::load(bytes, &mut pos)?;
    let time = T::load(bytes, &mut pos)?;
    let diff = R::load(bytes, &mut pos)?;
    (pos == bytes.len()).then_some((key, val, time, diff))
}

/// A sealed spine layer whose updates live in a sorted-run file on disk.
///
/// The handle retains only the batch's description, update count, sparse first-key
/// index (one decoded key per block), and a monomorphized entry decoder captured when
/// the layer was spilled — which is how spine code bounded only by `B: Batch` can read
/// a layer whose encoding required [`StoreData`].
pub struct StoredLayer<B: Batch> {
    path: PathBuf,
    description: Description<B::Time>,
    len: usize,
    index: Arc<Vec<B::Key>>,
    decode: fn(&[u8]) -> Option<Entry<B>>,
}

impl<B: Batch> Clone for StoredLayer<B> {
    fn clone(&self) -> Self {
        StoredLayer {
            path: self.path.clone(),
            description: self.description.clone(),
            len: self.len,
            index: Arc::clone(&self.index),
            decode: self.decode,
        }
    }
}

impl<B: Batch> std::fmt::Debug for StoredLayer<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredLayer")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("blocks", &self.index.len())
            .finish()
    }
}

/// Writes `batch`'s updates to a sorted-run file at `path` and returns the layer
/// handle. Entries are emitted in cursor order (key, then value, then time), with
/// block boundaries only between keys.
pub fn spill_batch<B>(batch: &B, path: &Path) -> io::Result<StoredLayer<B>>
where
    B: Batch,
    B::Key: StoreData,
    B::Val: StoreData,
    B::Time: StoreData,
    B::Diff: StoreData,
{
    let mut writer = RunWriter::create(path, DEFAULT_BLOCK_BYTES)?;
    let mut cursor = batch.cursor();
    let mut entry = Vec::new();
    let mut len = 0usize;
    let mut updates = Vec::new();
    while cursor.key_valid() {
        let mut key_boundary = true;
        while cursor.val_valid() {
            updates.clear();
            cursor.map_times(|time, diff| updates.push((time.clone(), diff.clone())));
            for (time, diff) in updates.drain(..) {
                entry.clear();
                cursor.key().store(&mut entry);
                cursor.val().store(&mut entry);
                time.store(&mut entry);
                diff.store(&mut entry);
                writer.push(&entry, key_boundary)?;
                key_boundary = false;
                len += 1;
            }
            cursor.step_val();
        }
        cursor.step_key();
    }
    let meta = writer.finish()?;
    let decode = decode_entry::<B::Key, B::Val, B::Time, B::Diff>;
    let mut index = Vec::with_capacity(meta.first_entries.len());
    for first in &meta.first_entries {
        let (key, ..) = decode(first).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "spilled first entry undecodable",
            )
        })?;
        index.push(key);
    }
    Ok(StoredLayer {
        path: path.to_path_buf(),
        description: batch.description().clone(),
        len,
        index: Arc::new(index),
        decode,
    })
}

impl<B: Batch> StoredLayer<B> {
    /// The number of updates in the spilled layer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the spilled layer holds no updates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The spilled batch's description.
    pub fn description(&self) -> &Description<B::Time> {
        &self.description
    }

    /// The run file backing this layer.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A streaming cursor over the spilled updates.
    ///
    /// Panics if the run file has been removed or damaged since the spill: a spilled
    /// layer is part of the trace's working state, exactly like memory it replaced.
    pub fn cursor(&self) -> StoredCursor<B> {
        StoredCursor::new(self)
    }

    /// Reads the whole layer back into an in-memory batch (used when a consumer needs
    /// an owned batch, e.g. when a new reader imports the trace's initial history).
    pub fn materialize(&self) -> B {
        let mut reader = RunReader::open(&self.path).expect("spilled run opens");
        let mut builder = B::Builder::with_capacity(self.len);
        for block in 0..reader.block_count() {
            let entries = reader.read_block(block).expect("spilled run block reads");
            for entry in &entries {
                let (key, val, time, diff) = (self.decode)(entry).expect("spilled entry decodes");
                builder.push(key, val, time, diff);
            }
        }
        builder.done(
            self.description.lower().clone(),
            self.description.upper().clone(),
            self.description.since().clone(),
        )
    }
}

/// One run-file block decoded into the two-level (key, value, history) layout cursors
/// navigate. Offsets mirror `OrdValStorage`: `key_offs` brackets each key's values,
/// `val_offs` brackets each value's updates.
struct DecodedBlock<B: Batch> {
    keys: Vec<B::Key>,
    key_offs: Vec<usize>,
    vals: Vec<B::Val>,
    val_offs: Vec<usize>,
    updates: Vec<(B::Time, B::Diff)>,
}

impl<B: Batch> DecodedBlock<B> {
    fn empty() -> Self {
        DecodedBlock {
            keys: Vec::new(),
            key_offs: vec![0],
            vals: Vec::new(),
            val_offs: vec![0],
            updates: Vec::new(),
        }
    }

    fn build(entries: &[Vec<u8>], decode: fn(&[u8]) -> Option<Entry<B>>) -> Self {
        let mut block = DecodedBlock::empty();
        for entry in entries {
            let (key, val, time, diff) = decode(entry).expect("spilled entry decodes");
            let new_key = block.keys.last() != Some(&key);
            if new_key {
                if !block.keys.is_empty() {
                    block.key_offs.push(block.vals.len());
                }
                block.keys.push(key);
            }
            if new_key || block.vals.last() != Some(&val) {
                if !block.vals.is_empty() {
                    block.val_offs.push(block.updates.len());
                }
                block.vals.push(val);
            }
            block.updates.push((time, diff));
        }
        if !block.keys.is_empty() {
            block.key_offs.push(block.vals.len());
            block.val_offs.push(block.updates.len());
        }
        block
    }
}

/// A forward-only cursor streaming a [`StoredLayer`]'s run file one block at a time.
///
/// Navigation mirrors `OrdValCursor` (seeks only move forward; `partition_point` within
/// the loaded block), with the sparse first-key index used to jump over whole blocks on
/// `seek_key`. At most one decoded block is resident per cursor.
pub struct StoredCursor<B: Batch> {
    reader: RunReader,
    index: Arc<Vec<B::Key>>,
    decode: fn(&[u8]) -> Option<Entry<B>>,
    /// Index of the decoded block; `reader.block_count()` once exhausted.
    block_index: usize,
    block: DecodedBlock<B>,
    key_pos: usize,
    val_pos: usize,
}

impl<B: Batch> StoredCursor<B> {
    fn new(layer: &StoredLayer<B>) -> Self {
        let reader = RunReader::open(&layer.path).expect("spilled run opens");
        let mut cursor = StoredCursor {
            reader,
            index: Arc::clone(&layer.index),
            decode: layer.decode,
            block_index: 0,
            block: DecodedBlock::empty(),
            key_pos: 0,
            val_pos: 0,
        };
        cursor.load_block(0);
        cursor.reset_vals();
        cursor
    }

    /// Decodes block `index` into residence; past-the-end leaves the cursor exhausted.
    fn load_block(&mut self, index: usize) {
        self.block_index = index.min(self.reader.block_count());
        if self.block_index == self.reader.block_count() {
            self.block = DecodedBlock::empty();
        } else {
            let entries = self
                .reader
                .read_block(self.block_index)
                .expect("spilled run block reads");
            self.block = DecodedBlock::build(&entries, self.decode);
        }
        self.key_pos = 0;
        self.val_pos = 0;
    }

    /// Restores the invariant that a non-exhausted cursor points at a key: if the
    /// current block is spent, advances to the next one.
    fn settle(&mut self) {
        while self.key_pos >= self.block.keys.len() && self.block_index < self.reader.block_count()
        {
            let next = self.block_index + 1;
            self.load_block(next);
        }
    }

    fn reset_vals(&mut self) {
        if self.key_valid() {
            self.val_pos = self.block.key_offs[self.key_pos];
        }
    }

    fn val_bounds(&self) -> (usize, usize) {
        (
            self.block.key_offs[self.key_pos],
            self.block.key_offs[self.key_pos + 1],
        )
    }
}

impl<B: Batch> Cursor for StoredCursor<B> {
    type Key = B::Key;
    type Val = B::Val;
    type Time = B::Time;
    type Diff = B::Diff;

    fn key_valid(&self) -> bool {
        self.key_pos < self.block.keys.len()
    }

    fn val_valid(&self) -> bool {
        self.key_valid() && self.val_pos < self.val_bounds().1
    }

    fn key(&self) -> &Self::Key {
        &self.block.keys[self.key_pos]
    }

    fn val(&self) -> &Self::Val {
        &self.block.vals[self.val_pos]
    }

    fn map_times(&mut self, mut logic: impl FnMut(&Self::Time, &Self::Diff)) {
        if self.val_valid() {
            let lower = self.block.val_offs[self.val_pos];
            let upper = self.block.val_offs[self.val_pos + 1];
            for (time, diff) in &self.block.updates[lower..upper] {
                logic(time, diff);
            }
        }
    }

    fn step_key(&mut self) {
        if self.key_valid() {
            self.key_pos += 1;
            self.settle();
            self.reset_vals();
        }
    }

    fn seek_key(&mut self, key: &Self::Key) {
        if !self.key_valid() {
            return;
        }
        // Jump to the last block whose first key is `<= key`; blocks are cut at key
        // boundaries, so no earlier block can contain `key`. Seeks only move forward.
        let candidate = self.index.partition_point(|first| first <= key);
        let target = candidate.saturating_sub(1);
        if target > self.block_index {
            self.load_block(target);
        }
        let remaining = &self.block.keys[self.key_pos..];
        self.key_pos += remaining.partition_point(|k| k < key);
        self.settle();
        self.reset_vals();
    }

    fn step_val(&mut self) {
        if self.val_valid() {
            self.val_pos += 1;
        }
    }

    fn seek_val(&mut self, val: &Self::Val) {
        if self.val_valid() {
            let (_, upper) = self.val_bounds();
            let remaining = &self.block.vals[self.val_pos..upper];
            self.val_pos += remaining.partition_point(|v| v < val);
        }
    }

    fn rewind_keys(&mut self) {
        self.load_block(0);
        self.reset_vals();
    }

    fn rewind_vals(&mut self) {
        self.reset_vals();
    }
}

/// A cursor over one spine layer, in memory or spilled.
///
/// [`Spine::cursor`](crate::spine::Spine::cursor) returns a
/// [`CursorList`](crate::cursor::CursorList) of these, so downstream operators navigate
/// mixed in-memory/on-disk traces through one type.
pub enum LayerCursor<B: Batch> {
    /// A cursor over an in-memory batch.
    Mem(B::Cursor),
    /// A cursor streaming a spilled layer's run file. Boxed: the stored cursor
    /// carries a resident block and seek scratch, far larger than a memory cursor.
    Stored(Box<StoredCursor<B>>),
}

impl<B: Batch> Cursor for LayerCursor<B> {
    type Key = B::Key;
    type Val = B::Val;
    type Time = B::Time;
    type Diff = B::Diff;

    fn key_valid(&self) -> bool {
        match self {
            LayerCursor::Mem(cursor) => cursor.key_valid(),
            LayerCursor::Stored(cursor) => cursor.key_valid(),
        }
    }

    fn val_valid(&self) -> bool {
        match self {
            LayerCursor::Mem(cursor) => cursor.val_valid(),
            LayerCursor::Stored(cursor) => cursor.val_valid(),
        }
    }

    fn key(&self) -> &Self::Key {
        match self {
            LayerCursor::Mem(cursor) => cursor.key(),
            LayerCursor::Stored(cursor) => cursor.key(),
        }
    }

    fn val(&self) -> &Self::Val {
        match self {
            LayerCursor::Mem(cursor) => cursor.val(),
            LayerCursor::Stored(cursor) => cursor.val(),
        }
    }

    fn map_times(&mut self, logic: impl FnMut(&Self::Time, &Self::Diff)) {
        match self {
            LayerCursor::Mem(cursor) => cursor.map_times(logic),
            LayerCursor::Stored(cursor) => cursor.map_times(logic),
        }
    }

    fn step_key(&mut self) {
        match self {
            LayerCursor::Mem(cursor) => cursor.step_key(),
            LayerCursor::Stored(cursor) => cursor.step_key(),
        }
    }

    fn seek_key(&mut self, key: &Self::Key) {
        match self {
            LayerCursor::Mem(cursor) => cursor.seek_key(key),
            LayerCursor::Stored(cursor) => cursor.seek_key(key),
        }
    }

    fn step_val(&mut self) {
        match self {
            LayerCursor::Mem(cursor) => cursor.step_val(),
            LayerCursor::Stored(cursor) => cursor.step_val(),
        }
    }

    fn seek_val(&mut self, val: &Self::Val) {
        match self {
            LayerCursor::Mem(cursor) => cursor.seek_val(val),
            LayerCursor::Stored(cursor) => cursor.seek_val(val),
        }
    }

    fn rewind_keys(&mut self) {
        match self {
            LayerCursor::Mem(cursor) => cursor.rewind_keys(),
            LayerCursor::Stored(cursor) => cursor.rewind_keys(),
        }
    }

    fn rewind_vals(&mut self) {
        match self {
            LayerCursor::Mem(cursor) => cursor.rewind_vals(),
            LayerCursor::Stored(cursor) => cursor.rewind_vals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_and_reject_truncation() {
        let mut bytes = Vec::new();
        42u64.store(&mut bytes);
        (-7i64).store(&mut bytes);
        "hello".to_string().store(&mut bytes);
        vec![1u32, 2, 3].store(&mut bytes);
        (4u8, true, ()).store(&mut bytes);
        Time::from_coords([1, 2, 3]).store(&mut bytes);

        let mut pos = 0;
        assert_eq!(u64::load(&bytes, &mut pos), Some(42));
        assert_eq!(i64::load(&bytes, &mut pos), Some(-7));
        assert_eq!(String::load(&bytes, &mut pos), Some("hello".to_string()));
        assert_eq!(Vec::<u32>::load(&bytes, &mut pos), Some(vec![1, 2, 3]));
        assert_eq!(
            <(u8, bool, ())>::load(&bytes, &mut pos),
            Some((4, true, ()))
        );
        assert_eq!(
            Time::load(&bytes, &mut pos),
            Some(Time::from_coords([1, 2, 3]))
        );
        assert_eq!(pos, bytes.len());

        for cut in 0..bytes.len() {
            let short = &bytes[..cut];
            let mut pos = 0;
            let full = (
                u64::load(short, &mut pos),
                i64::load(short, &mut pos),
                String::load(short, &mut pos),
                Vec::<u32>::load(short, &mut pos),
                <(u8, bool, ())>::load(short, &mut pos),
                Time::load(short, &mut pos),
            );
            assert!(full.5.is_none(), "truncation at {cut} decoded fully");
        }
    }

    #[test]
    fn adversarial_lengths_do_not_overallocate() {
        // A Vec claiming u64::MAX elements backed by no bytes must fail cleanly.
        let mut bytes = Vec::new();
        u64::MAX.store(&mut bytes);
        let mut pos = 0;
        assert_eq!(Vec::<u64>::load(&bytes, &mut pos), None);
        let mut pos = 0;
        assert_eq!(String::load(&bytes, &mut pos), None);
    }
}
