//! Model-based tests of the amortized batch builders: interleaved push/seal cycles with
//! heavy duplication must consolidate *identically* to a one-shot sort-then-coalesce
//! reference, and the mid-build consolidations must keep the buffer bounded by the
//! number of distinct tuples.
//!
//! Cases are generated from a seeded deterministic PRNG (`kpg_timestamp::rng`), so every
//! run explores the same corpus and failures are reproducible by seed.

use kpg_timestamp::rng::SmallRng;
use kpg_timestamp::Antichain;
use kpg_trace::cursor::cursor_to_updates;
use kpg_trace::key_batch::OrdKeyBuilder;
use kpg_trace::ord_batch::OrdValBuilder;
use kpg_trace::{BatchReader, Builder};

type Key = u8;
type Val = u8;
type TimeT = u64;

const CASES: u64 = 48;

/// The case budget: `CASES` natively, shrunk under Miri (interpretation is orders of
/// magnitude slower), overridable either way with `KPG_MODEL_CASES`.
fn cases() -> u64 {
    let scaled = if cfg!(miri) {
        (CASES / 16).max(2)
    } else {
        CASES
    };
    std::env::var("KPG_MODEL_CASES")
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(scaled)
}

/// The reference scalar path: sort by `(key, val, time)`, coalesce equal tuples by
/// adding diffs, and drop zeros.
fn sort_then_coalesce(mut updates: Vec<(Key, Val, TimeT, isize)>) -> Vec<(Key, Val, TimeT, isize)> {
    updates.sort_by_key(|update| (update.0, update.1, update.2));
    let mut result: Vec<(Key, Val, TimeT, isize)> = Vec::new();
    for (k, v, t, r) in updates {
        match result.last_mut() {
            Some(last) if last.0 == k && last.1 == v && last.2 == t => last.3 += r,
            _ => result.push((k, v, t, r)),
        }
        if result.last().map(|last| last.3 == 0).unwrap_or(false) {
            result.pop();
        }
    }
    // A zero mid-run only cancels if nothing of the same tuple follows; re-filter to be
    // safe against pop-then-push of the same tuple (cannot happen on sorted input, but
    // keeps the reference obviously correct).
    result.retain(|(_, _, _, r)| *r != 0);
    result
}

/// Draws one batch's worth of updates from small domains so duplicate `(key, val, time)`
/// tuples (and exact cancellations) are common.
fn draw_updates(rng: &mut SmallRng, len: usize) -> Vec<(Key, Val, TimeT, isize)> {
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..12u8),
                rng.gen_range(0..4u8),
                rng.gen_range(0..4u64),
                rng.gen_range(-2..3isize),
            )
        })
        .collect()
}

#[test]
fn ord_val_builder_matches_sort_then_coalesce() {
    for seed in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Sizes straddle the internal consolidation threshold so some cases exercise
        // only the final consolidation and others several mid-build ones.
        let len = rng.gen_range(0..2048usize);
        let updates = draw_updates(&mut rng, len);

        let mut builder = OrdValBuilder::default();
        for (k, v, t, r) in updates.iter() {
            builder.push(*k, *v, *t, *r);
        }
        let (_, buffered, _) = builder.buffer_state();
        let expected = sort_then_coalesce(updates);
        // The amortized buffer holds at most the distinct tuples plus one unsorted
        // prefix's worth of duplicates (the consolidation threshold or the sorted
        // prefix, whichever is larger); with a small domain this bounds it well below
        // the raw push count for the larger cases.
        assert!(
            buffered <= 2 * expected.len().max(256) + 256,
            "seed {seed}: buffer {buffered} not bounded by distinct tuples ({})",
            expected.len()
        );
        let batch = builder.done(
            Antichain::from_elem(0),
            Antichain::from_elem(4),
            Antichain::from_elem(0),
        );
        assert_eq!(batch.len(), expected.len(), "seed {seed}");
        let got = cursor_to_updates(&mut batch.cursor());
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn ord_val_builder_interleaved_seal_cycles_match() {
    // One logical update stream cut into several push/seal cycles: each sealed batch
    // must equal the reference consolidation of exactly its own slice.
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for _case in 0..8 {
        let mut lower = 0u64;
        for cycle in 0..6u64 {
            let len = rng.gen_range(0..900usize);
            let updates: Vec<(Key, Val, TimeT, isize)> = (0..len)
                .map(|_| {
                    (
                        rng.gen_range(0..10u8),
                        rng.gen_range(0..3u8),
                        lower + rng.gen_range(0..2u64),
                        rng.gen_range(-1..2isize),
                    )
                })
                .collect();
            let mut builder = OrdValBuilder::with_capacity(16);
            for (k, v, t, r) in updates.iter() {
                builder.push(*k, *v, *t, *r);
            }
            let upper = lower + 2;
            let batch = builder.done(
                Antichain::from_elem(lower),
                Antichain::from_elem(upper),
                Antichain::from_elem(0),
            );
            let expected = sort_then_coalesce(updates);
            assert_eq!(
                cursor_to_updates(&mut batch.cursor()),
                expected,
                "cycle {cycle}"
            );
            assert_eq!(batch.description().lower().elements(), &[lower]);
            assert_eq!(batch.description().upper().elements(), &[upper]);
            lower = upper;
        }
    }
}

#[test]
fn ord_key_builder_matches_sort_then_coalesce() {
    for seed in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(1_000 + seed);
        let len = rng.gen_range(0..1500usize);
        let updates: Vec<(Key, TimeT, isize)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range(0..12u8),
                    rng.gen_range(0..4u64),
                    rng.gen_range(-2..3isize),
                )
            })
            .collect();

        let mut builder = OrdKeyBuilder::default();
        for (k, t, r) in updates.iter() {
            builder.push(*k, (), *t, *r);
        }
        let batch = builder.done(
            Antichain::from_elem(0),
            Antichain::from_elem(4),
            Antichain::from_elem(0),
        );

        let expected: Vec<(Key, (), TimeT, isize)> =
            sort_then_coalesce(updates.iter().map(|(k, t, r)| (*k, 0u8, *t, *r)).collect())
                .into_iter()
                .map(|(k, _, t, r)| (k, (), t, r))
                .collect();
        assert_eq!(
            cursor_to_updates(&mut batch.cursor()),
            expected,
            "seed {seed}"
        );
    }
}
