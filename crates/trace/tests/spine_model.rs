//! Model-based property tests: a `Spine` must accumulate exactly like a naive list of
//! updates, before and after compaction, for arbitrary update sequences.

use kpg_timestamp::{Antichain, AntichainRef, PartialOrder};
use kpg_trace::cursor::Cursor;
use kpg_trace::ord_batch::{OrdValBatch, OrdValBuilder};
use kpg_trace::{Builder, MergeEffort, Spine};
use proptest::prelude::*;
use std::collections::BTreeMap;

type Key = u8;
type Val = u8;
type TimeT = u64;

/// Accumulate a naive update list at `time` for every (key, val).
fn naive_accumulate(
    updates: &[(Key, Val, TimeT, isize)],
    upto: TimeT,
) -> BTreeMap<(Key, Val), isize> {
    let mut result = BTreeMap::new();
    for (k, v, t, r) in updates {
        if (*t).less_equal(&upto) {
            *result.entry((*k, *v)).or_insert(0) += *r;
        }
    }
    result.retain(|_, r| *r != 0);
    result
}

/// Accumulate the spine's cursor at `time` for every (key, val).
fn spine_accumulate(
    spine: &Spine<OrdValBatch<Key, Val, TimeT, isize>>,
    upto: TimeT,
) -> BTreeMap<(Key, Val), isize> {
    let mut result = BTreeMap::new();
    let mut cursor = spine.cursor();
    while cursor.key_valid() {
        while cursor.val_valid() {
            let key = *cursor.key();
            let val = *cursor.val();
            let mut sum = 0isize;
            cursor.map_times(|t, r| {
                if t.less_equal(&upto) {
                    sum += *r;
                }
            });
            if sum != 0 {
                result.insert((key, val), sum);
            }
            cursor.step_val();
        }
        cursor.step_key();
    }
    result
}

fn build_spine(
    epochs: &[Vec<(Key, Val, isize)>],
    effort: MergeEffort,
    compaction: Option<TimeT>,
) -> (Spine<OrdValBatch<Key, Val, TimeT, isize>>, Vec<(Key, Val, TimeT, isize)>) {
    let mut spine = Spine::new(effort);
    let mut all_updates = Vec::new();
    for (epoch, changes) in epochs.iter().enumerate() {
        let time = epoch as TimeT;
        let mut builder = OrdValBuilder::with_capacity(changes.len());
        for (k, v, r) in changes {
            builder.push(*k, *v, time, *r);
            all_updates.push((*k, *v, time, *r));
        }
        let batch = builder.done(
            Antichain::from_elem(time),
            Antichain::from_elem(time + 1),
            Antichain::from_elem(0),
        );
        spine.insert(batch);
        if let Some(since) = compaction {
            if time >= since {
                spine.set_logical_compaction(AntichainRef::new(&[since]));
            }
        }
    }
    (spine, all_updates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without compaction, the spine accumulates identically to the naive model at every
    /// probe time, regardless of merge effort.
    #[test]
    fn spine_matches_naive_model(
        epochs in prop::collection::vec(
            prop::collection::vec((0u8..8, 0u8..4, -2isize..3), 0..8),
            1..12,
        ),
        effort_idx in 0usize..3,
        probe in 0u64..12,
    ) {
        let effort = [MergeEffort::Eager, MergeEffort::Default, MergeEffort::Lazy][effort_idx];
        let (spine, updates) = build_spine(&epochs, effort, None);
        prop_assert_eq!(spine_accumulate(&spine, probe), naive_accumulate(&updates, probe));
    }

    /// With the logical compaction frontier advanced to `since`, accumulations at times at
    /// or beyond `since` are still exact.
    #[test]
    fn spine_compaction_preserves_accumulations_beyond_since(
        epochs in prop::collection::vec(
            prop::collection::vec((0u8..8, 0u8..4, -2isize..3), 0..8),
            2..12,
        ),
        since in 0u64..6,
        probe_offset in 0u64..8,
    ) {
        let (spine, updates) = build_spine(&epochs, MergeEffort::Eager, Some(since));
        let probe = since + probe_offset;
        prop_assert_eq!(spine_accumulate(&spine, probe), naive_accumulate(&updates, probe));
    }

    /// The spine never holds more updates than were inserted (consolidation only shrinks),
    /// and its layer count stays logarithmic.
    #[test]
    fn spine_is_compact(
        epochs in prop::collection::vec(
            prop::collection::vec((0u8..4, 0u8..2, -1isize..2), 0..6),
            1..40,
        ),
    ) {
        let (mut spine, updates) = build_spine(&epochs, MergeEffort::Default, None);
        prop_assert!(spine.len() <= updates.len());
        for _ in 0..32 { spine.exert(1 << 12); }
        let non_empty = updates.len().max(2);
        let bound = 4 * (non_empty as f64).log2().ceil() as usize + 4;
        prop_assert!(spine.layer_count() <= bound,
            "{} layers for {} updates", spine.layer_count(), updates.len());
    }
}
