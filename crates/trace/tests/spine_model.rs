//! Model-based randomized tests: a `Spine` must accumulate exactly like a naive list of
//! updates, before and after compaction, for arbitrary update sequences.
//!
//! Cases are generated from a seeded deterministic PRNG (`kpg_timestamp::rng`), so every
//! run explores the same corpus and failures are reproducible by seed.

use kpg_timestamp::rng::SmallRng;
use kpg_timestamp::{Antichain, AntichainRef, PartialOrder};
use kpg_trace::cursor::Cursor;
use kpg_trace::ord_batch::{OrdValBatch, OrdValBuilder};
use kpg_trace::{Builder, MergeEffort, Spine};
use std::collections::BTreeMap;

type Key = u8;
type Val = u8;
type TimeT = u64;

const CASES: u64 = 64;

/// The case budget: `CASES` natively, shrunk under Miri (interpretation is orders of
/// magnitude slower), overridable either way with `KPG_MODEL_CASES`.
fn cases() -> u64 {
    let scaled = if cfg!(miri) {
        (CASES / 16).max(2)
    } else {
        CASES
    };
    std::env::var("KPG_MODEL_CASES")
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(scaled)
}

/// Accumulate a naive update list at `time` for every (key, val).
fn naive_accumulate(
    updates: &[(Key, Val, TimeT, isize)],
    upto: TimeT,
) -> BTreeMap<(Key, Val), isize> {
    let mut result = BTreeMap::new();
    for (k, v, t, r) in updates {
        if (*t).less_equal(&upto) {
            *result.entry((*k, *v)).or_insert(0) += *r;
        }
    }
    result.retain(|_, r| *r != 0);
    result
}

/// Accumulate the spine's cursor at `time` for every (key, val).
fn spine_accumulate(
    spine: &Spine<OrdValBatch<Key, Val, TimeT, isize>>,
    upto: TimeT,
) -> BTreeMap<(Key, Val), isize> {
    let mut result = BTreeMap::new();
    let mut cursor = spine.cursor();
    while cursor.key_valid() {
        while cursor.val_valid() {
            let key = *cursor.key();
            let val = *cursor.val();
            let mut sum = 0isize;
            cursor.map_times(|t, r| {
                if t.less_equal(&upto) {
                    sum += *r;
                }
            });
            if sum != 0 {
                result.insert((key, val), sum);
            }
            cursor.step_val();
        }
        cursor.step_key();
    }
    result
}

/// Draws a random epoch script: per epoch, a small batch of (key, val, diff) changes.
fn random_epochs(
    rng: &mut SmallRng,
    epoch_bounds: (usize, usize),
    changes_per_epoch: usize,
    key_bound: u8,
    val_bound: u8,
) -> Vec<Vec<(Key, Val, isize)>> {
    let epochs = rng.gen_range(epoch_bounds.0..epoch_bounds.1);
    (0..epochs)
        .map(|_| {
            let changes = rng.gen_range(0..changes_per_epoch);
            (0..changes)
                .map(|_| {
                    (
                        rng.gen_range(0..key_bound),
                        rng.gen_range(0..val_bound),
                        rng.gen_range(-2isize..3),
                    )
                })
                .collect()
        })
        .collect()
}

#[allow(clippy::type_complexity)]
fn build_spine(
    epochs: &[Vec<(Key, Val, isize)>],
    effort: MergeEffort,
    compaction: Option<TimeT>,
) -> (
    Spine<OrdValBatch<Key, Val, TimeT, isize>>,
    Vec<(Key, Val, TimeT, isize)>,
) {
    let mut spine = Spine::new(effort);
    let mut all_updates = Vec::new();
    for (epoch, changes) in epochs.iter().enumerate() {
        let time = epoch as TimeT;
        let mut builder = OrdValBuilder::with_capacity(changes.len());
        for (k, v, r) in changes {
            builder.push(*k, *v, time, *r);
            all_updates.push((*k, *v, time, *r));
        }
        let batch = builder.done(
            Antichain::from_elem(time),
            Antichain::from_elem(time + 1),
            Antichain::from_elem(0),
        );
        spine.insert(batch);
        if let Some(since) = compaction {
            if time >= since {
                spine.set_logical_compaction(AntichainRef::new(&[since]));
            }
        }
    }
    (spine, all_updates)
}

/// Without compaction, the spine accumulates identically to the naive model at every
/// probe time, regardless of merge effort.
#[test]
fn spine_matches_naive_model() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xA001 + case);
        let epochs = random_epochs(&mut rng, (1, 12), 8, 8, 4);
        let effort =
            [MergeEffort::Eager, MergeEffort::Default, MergeEffort::Lazy][(case % 3) as usize];
        let probe = rng.gen_range(0u64..12);
        let (spine, updates) = build_spine(&epochs, effort, None);
        assert_eq!(
            spine_accumulate(&spine, probe),
            naive_accumulate(&updates, probe),
            "case {case} (effort {effort:?}, probe {probe})"
        );
    }
}

/// With the logical compaction frontier advanced to `since`, accumulations at times at
/// or beyond `since` are still exact.
#[test]
fn spine_compaction_preserves_accumulations_beyond_since() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xB001 + case);
        let epochs = random_epochs(&mut rng, (2, 12), 8, 8, 4);
        let since = rng.gen_range(0u64..6);
        let probe = since + rng.gen_range(0u64..8);
        let (spine, updates) = build_spine(&epochs, MergeEffort::Eager, Some(since));
        assert_eq!(
            spine_accumulate(&spine, probe),
            naive_accumulate(&updates, probe),
            "case {case} (since {since}, probe {probe})"
        );
    }
}

/// The spine never holds more updates than were inserted (consolidation only shrinks),
/// and its layer count stays logarithmic.
#[test]
fn spine_is_compact() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xC001 + case);
        let epochs = random_epochs(&mut rng, (1, 40), 6, 4, 2);
        let (mut spine, updates) = build_spine(&epochs, MergeEffort::Default, None);
        assert!(spine.len() <= updates.len(), "case {case}");
        for _ in 0..32 {
            spine.exert(1 << 12);
        }
        let non_empty = updates.len().max(2);
        let bound = 4 * (non_empty as f64).log2().ceil() as usize + 4;
        assert!(
            spine.layer_count() <= bound,
            "case {case}: {} layers for {} updates",
            spine.layer_count(),
            updates.len()
        );
    }
}
