//! Model test for LSM-spilled spine layers: a spine kept under a small in-memory
//! budget — so most of its history lives in spilled sorted-run files — must answer
//! exactly like a scalar reference that accumulates the same random updates.

use std::collections::BTreeMap;

use kpg_timestamp::rng::SmallRng;
use kpg_timestamp::Antichain;
use kpg_trace::cursor::cursor_to_updates;
use kpg_trace::ord_batch::{OrdValBatch, OrdValBuilder};
use kpg_trace::{Builder, Cursor, MergeEffort, Spine};

type TestBatch = OrdValBatch<u64, u64, u64, isize>;

fn temp_run_dir(tag: &str) -> std::path::PathBuf {
    use kpg_sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "kpg-stored-model-{tag}-{}-{unique}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The in-memory update budget the workload deliberately exceeds many times over.
const BUDGET: usize = 256;
const EPOCHS: u64 = 200;
const UPDATES_PER_EPOCH: usize = 24;
const KEYS: u64 = 64;
const VALS: u64 = 8;

#[test]
fn over_budget_spine_matches_scalar_reference() {
    let mut rng = SmallRng::seed_from_u64(0xD1CE_5EED);
    let mut spine: Spine<TestBatch> = Spine::new(MergeEffort::Lazy);
    // The scalar reference: the multiset of updates by (key, val, time).
    let mut reference: BTreeMap<(u64, u64, u64), isize> = BTreeMap::new();

    let dir = temp_run_dir("model");
    let mut spill_count = 0usize;
    let mut spilled_updates = 0usize;

    for epoch in 0..EPOCHS {
        let mut builder = OrdValBuilder::with_capacity(UPDATES_PER_EPOCH);
        for _ in 0..UPDATES_PER_EPOCH {
            let key = rng.gen_range(0..KEYS);
            let val = rng.gen_range(0..VALS);
            let diff: isize = if rng.gen_range(0..4u32) == 0 { -1 } else { 1 };
            builder.push(key, val, epoch, diff);
            let slot = reference.entry((key, val, epoch)).or_insert(0);
            *slot += diff;
            if *slot == 0 {
                reference.remove(&(key, val, epoch));
            }
        }
        spine.insert(builder.done(
            Antichain::from_elem(epoch),
            Antichain::from_elem(epoch + 1),
            Antichain::from_elem(0),
        ));
        // Enforce the memory budget by spilling oldest settled layers. A layer that
        // is mid-merge is skipped (spill_oldest returns false); it becomes eligible
        // once merging completes, so the budget is exceeded only transiently.
        while spine.in_memory_len() > BUDGET {
            let before = spine.in_memory_len();
            let path = dir.join(format!("spill-{spill_count:04}.run"));
            if !spine.spill_oldest(&path).unwrap() {
                spine.exert(4096);
                if spine.in_memory_len() >= before && !spine.spill_oldest(&path).unwrap() {
                    break;
                }
            }
            spill_count += 1;
            spilled_updates += before - spine.in_memory_len();
        }
    }

    assert!(
        spilled_updates > BUDGET,
        "workload must overflow the budget: spilled {spilled_updates} <= {BUDGET}"
    );
    assert!(
        spine.stored_layer_count() >= 1,
        "expected stored layers, got none"
    );

    // Full-scan equivalence: the spine's merged cursor accumulates to the reference.
    let mut accumulated: BTreeMap<(u64, u64, u64), isize> = BTreeMap::new();
    for (key, val, time, diff) in cursor_to_updates(&mut spine.cursor()) {
        let slot = accumulated.entry((key, val, time)).or_insert(0);
        *slot += diff;
        if *slot == 0 {
            accumulated.remove(&(key, val, time));
        }
    }
    assert_eq!(accumulated, reference);

    // Random seek probes: accumulate_until through the mixed cursor must agree with
    // the reference folded to the same upper bound.
    for _ in 0..200 {
        let key = rng.gen_range(0..KEYS);
        let val = rng.gen_range(0..VALS);
        let upto = rng.gen_range(0..EPOCHS + 1);
        let expected: isize = reference
            .iter()
            .filter(|((k, v, t), _)| *k == key && *v == val && *t <= upto)
            .map(|(_, diff)| *diff)
            .sum();
        let mut cursor = spine.cursor();
        cursor.seek_key(&key);
        let mut observed = 0isize;
        if cursor.key_valid() && *cursor.key() == key {
            cursor.seek_val(&val);
            if cursor.val_valid() && *cursor.val() == val {
                observed = cursor.accumulate_until(&upto).unwrap_or(0);
            }
        }
        assert_eq!(
            observed, expected,
            "probe (key={key}, val={val}, upto={upto}) diverged"
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
