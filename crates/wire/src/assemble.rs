//! Incremental frame assembly: the nonblocking counterpart of
//! [`read_frame`](crate::read_frame).
//!
//! A readiness-driven reader cannot block until a frame is complete — bytes arrive
//! in whatever chunks the kernel delivers, cut anywhere: mid-header, mid-payload,
//! one byte at a time. [`FrameAssembler`] is the state machine that turns that
//! arbitrary chunking back into the exact frame sequence [`read_frame`] would have
//! produced: feed every received chunk to [`FrameAssembler::ingest`], pop completed
//! frames with [`FrameAssembler::next_frame`].
//!
//! The resynchronization properties of the blocking reader carry over unchanged:
//!
//! * An announced payload larger than the limit is *discarded as it streams in* —
//!   counted, never buffered — and surfaces as [`Frame::TooLarge`] once fully
//!   skipped, with the assembler already aligned on the next frame's header.
//! * A payload that later fails to decode costs exactly one frame: the length
//!   travels outside the payload, so the assembler is alignment-safe against any
//!   payload corruption.
//! * Memory held is bounded by one partial frame (at most the limit) plus whatever
//!   completed frames the consumer has not yet popped — which is in turn bounded by
//!   the chunk sizes the consumer chooses to ingest.

use std::collections::VecDeque;

use crate::frame::Frame;

/// Where the assembler is inside the byte stream.
enum State {
    /// Collecting the 4-byte big-endian length prefix.
    Header { got: [u8; 4], filled: usize },
    /// Collecting a payload of known, in-limit length.
    Body { payload: Vec<u8>, expect: usize },
    /// Discarding an oversized payload; `announced` is reported when it ends.
    Skip { announced: u64, remaining: u64 },
}

/// An incremental frame parser over arbitrarily chunked bytes. See the module docs.
pub struct FrameAssembler {
    limit: usize,
    state: State,
    ready: VecDeque<Frame>,
}

impl FrameAssembler {
    /// An assembler that buffers at most `limit` bytes per frame; larger frames are
    /// skipped unbuffered and reported as [`Frame::TooLarge`].
    pub fn new(limit: usize) -> FrameAssembler {
        FrameAssembler {
            limit,
            state: State::Header {
                got: [0; 4],
                filled: 0,
            },
            ready: VecDeque::new(),
        }
    }

    /// Consumes one received chunk, advancing the state machine. Completed frames
    /// queue up for [`FrameAssembler::next_frame`]; partial state waits for the
    /// next chunk.
    pub fn ingest(&mut self, mut chunk: &[u8]) {
        while !chunk.is_empty() {
            match &mut self.state {
                State::Header { got, filled } => {
                    let take = chunk.len().min(4 - *filled);
                    got[*filled..*filled + take].copy_from_slice(&chunk[..take]);
                    *filled += take;
                    chunk = &chunk[take..];
                    if *filled == 4 {
                        let length = u64::from(u32::from_be_bytes(*got));
                        self.state = if length > self.limit as u64 {
                            State::Skip {
                                announced: length,
                                remaining: length,
                            }
                        } else {
                            State::Body {
                                payload: Vec::with_capacity(length as usize),
                                expect: length as usize,
                            }
                        };
                        self.finish_if_complete();
                    }
                }
                State::Body { payload, expect } => {
                    let take = chunk.len().min(*expect - payload.len());
                    payload.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    self.finish_if_complete();
                }
                State::Skip { remaining, .. } => {
                    let take = (chunk.len() as u64).min(*remaining);
                    *remaining -= take;
                    chunk = &chunk[take as usize..];
                    self.finish_if_complete();
                }
            }
        }
    }

    /// Emits the current frame if its final byte has arrived and resets to the
    /// header state. (Also handles zero-length payloads and zero-length skips,
    /// which complete without consuming any body bytes.)
    fn finish_if_complete(&mut self) {
        let done = match &self.state {
            State::Header { .. } => return,
            State::Body { payload, expect } => payload.len() == *expect,
            State::Skip { remaining, .. } => *remaining == 0,
        };
        if !done {
            return;
        }
        let state = std::mem::replace(
            &mut self.state,
            State::Header {
                got: [0; 4],
                filled: 0,
            },
        );
        match state {
            State::Body { payload, .. } => self.ready.push_back(Frame::Payload(payload)),
            State::Skip { announced, .. } => self.ready.push_back(Frame::TooLarge(announced)),
            State::Header { .. } => unreachable!("checked above"),
        }
    }

    /// The next completed frame, in stream order.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.ready.pop_front()
    }

    /// How many completed frames are queued.
    pub fn pending_frames(&self) -> usize {
        self.ready.len()
    }

    /// Bytes currently held: the partial frame under assembly plus queued complete
    /// payloads. Skipped (oversized) bytes are never held and never counted.
    pub fn buffered_bytes(&self) -> usize {
        let partial = match &self.state {
            State::Header { filled, .. } => *filled,
            State::Body { payload, .. } => 4 + payload.len(),
            State::Skip { .. } => 4,
        };
        partial
            + self
                .ready
                .iter()
                .map(|frame| match frame {
                    Frame::Payload(payload) => 4 + payload.len(),
                    Frame::TooLarge(_) => 4,
                })
                .sum::<usize>()
    }

    /// Whether the assembler is at a frame boundary with nothing queued — the
    /// clean-EOF condition (a peer that closes mid-frame truncated its stream).
    pub fn is_idle(&self) -> bool {
        self.ready.is_empty() && matches!(&self.state, State::Header { filled: 0, .. })
    }
}

impl std::fmt::Debug for FrameAssembler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameAssembler")
            .field("limit", &self.limit)
            .field("pending_frames", &self.ready.len())
            .finish_non_exhaustive()
    }
}
