//! The value codec: version-prefixed, tag-discriminated, length-checked.
//!
//! ## Layout
//!
//! Every top-level encoding starts with one [`VERSION`] byte, followed by the value's
//! body. Bodies are built from five primitives: `u8`, `u32` little-endian (lengths and
//! counts), `u64` / `i64` little-endian (payload integers), and UTF-8 strings as a
//! `u32` byte length followed by the bytes. Enums write a one-byte variant tag followed
//! by the variant's fields in declaration order; sequences write a `u32` element count
//! followed by the elements.
//!
//! | type | body |
//! | --- | --- |
//! | `Value` | tag (`0` Int, `1` UInt, `2` String) + payload |
//! | `Row` | `u32` arity + values |
//! | `Expr` | tag (`0` Column .. `13` Not) + operands |
//! | `ReduceKind` | tag (`0` Count, `1` Sum, `2` Min, `3` Top) + column |
//! | `Plan` | tag (`0` Source .. `9` Iterate) + fields |
//! | `Command` | tag (`0` CreateInput .. `5` Query) + fields |
//! | [`Response`] | tag (`0` Ok, `1` PlanError, `2` QueryResults, `3` WireError) + fields |
//!
//! ## Totality
//!
//! Decoders never panic and never allocate beyond what the received bytes justify:
//! every read is bounds-checked, every sequence count is checked against the remaining
//! bytes (each element consumes at least one), recursion depth is capped at
//! [`MAX_DEPTH`], and column indices / key arities are capped at [`MAX_COLUMN`] so a
//! hostile `CreateInput { key_arity: 2^60 }` is rejected here instead of exhausting
//! memory in the executor. Anything out of contract returns a [`WireError`].
//!
//! Encoders are infallible for protocol-sized data and panic (debug contract) only on
//! locally constructed values that cannot be represented at all — a collection longer
//! than `u32::MAX` elements.

use std::fmt;

use kpg_plan::{Command, Expr, Plan, ReduceKind, Row, Value};

/// The wire protocol version this build speaks. The first byte of every encoded
/// message; decoders reject anything else.
pub const VERSION: u8 = 1;

/// The maximum nesting depth a decoder accepts for recursive structures (`Expr`,
/// `Plan`). Deeper messages return [`WireError::Depth`] instead of risking the stack.
pub const MAX_DEPTH: usize = 64;

/// The maximum column index / key arity a decoder accepts. Column numbers beyond this
/// are nonsensical for real plans and would make the executor allocate huge key
/// vectors, so the byte boundary rejects them.
pub const MAX_COLUMN: u64 = 1 << 16;

/// The default frame-size limit (1 MiB): the largest payload [`crate::read_frame`]
/// will buffer unless configured otherwise.
pub const DEFAULT_FRAME_LIMIT: usize = 1 << 20;

/// Why a decode was rejected. Every variant is a *protocol* failure: the bytes did not
/// describe a value, or described one outside the decoder's resource contract. The
/// manager never sees the message; the connection stays usable (framing is
/// length-prefixed, so the next frame still decodes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The message ended before the value did.
    Truncated {
        /// Bytes the next read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The value ended before the message did.
    Trailing {
        /// Bytes the value consumed.
        consumed: usize,
        /// Total message length.
        length: usize,
    },
    /// The version byte was not [`VERSION`].
    Version {
        /// The version byte received.
        found: u8,
    },
    /// An enum tag was not a known variant.
    Tag {
        /// The type being decoded.
        what: &'static str,
        /// The unknown tag.
        tag: u8,
    },
    /// A string's bytes were not valid UTF-8.
    Utf8,
    /// A count or index exceeded the decoder's resource contract ([`MAX_COLUMN`], or a
    /// sequence count larger than the bytes that could possibly back it).
    Limit {
        /// What was being decoded.
        what: &'static str,
        /// The value received.
        value: u64,
        /// The largest acceptable value.
        limit: u64,
    },
    /// A recursive structure nested deeper than [`MAX_DEPTH`].
    Depth {
        /// The depth limit.
        limit: usize,
    },
    /// A frame announced a payload larger than the reader's limit (reported by the
    /// framing layer; the payload was discarded, not buffered).
    FrameTooLarge {
        /// The announced payload length.
        length: u64,
        /// The reader's limit.
        limit: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::Trailing { consumed, length } => write!(
                f,
                "trailing garbage: value ended at byte {consumed} of a {length}-byte message"
            ),
            WireError::Version { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {VERSION})"
                )
            }
            WireError::Tag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Utf8 => write!(f, "string bytes are not valid UTF-8"),
            WireError::Limit { what, value, limit } => {
                write!(f, "{what} {value} exceeds the protocol limit {limit}")
            }
            WireError::Depth { limit } => {
                write!(f, "message nests deeper than the protocol limit {limit}")
            }
            WireError::FrameTooLarge { length, limit } => {
                write!(f, "frame of {length} bytes exceeds the frame limit {limit}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked cursor over a received message's bytes.
///
/// All decoding goes through this type: every primitive read verifies the bytes are
/// present, and recursive decoders track nesting depth through it. A `Reader` never
/// panics on any input.
pub struct Reader<'a> {
    bytes: &'a [u8],
    position: usize,
    depth: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader {
            bytes,
            position: 0,
            depth: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.position
    }

    fn need(&self, needed: usize) -> Result<(), WireError> {
        if needed > self.remaining() {
            Err(WireError::Truncated {
                needed,
                remaining: self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// The next byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        let byte = self.bytes[self.position];
        self.position += 1;
        Ok(byte)
    }

    /// The next 4 bytes as a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.bytes[self.position..self.position + 4]);
        self.position += 4;
        Ok(u32::from_le_bytes(raw))
    }

    /// The next 8 bytes as a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.position..self.position + 8]);
        self.position += 8;
        Ok(u64::from_le_bytes(raw))
    }

    /// The next 8 bytes as a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// A length-prefixed UTF-8 string (`u32` byte length + bytes).
    pub fn string(&mut self) -> Result<String, WireError> {
        let length = self.u32()? as usize;
        self.need(length)?;
        let raw = &self.bytes[self.position..self.position + length];
        let text = std::str::from_utf8(raw).map_err(|_| WireError::Utf8)?;
        self.position += length;
        Ok(text.to_string())
    }

    /// A sequence count (`u32`), checked against the remaining bytes: every element
    /// consumes at least one byte, so a count beyond `remaining` cannot be honest and
    /// is rejected *before* any allocation.
    pub fn count(&mut self, what: &'static str) -> Result<usize, WireError> {
        let count = self.u32()? as u64;
        let remaining = self.remaining() as u64;
        if count > remaining {
            return Err(WireError::Limit {
                what,
                value: count,
                limit: remaining,
            });
        }
        Ok(count as usize)
    }

    /// A column index / key arity (`u64`), capped at [`MAX_COLUMN`].
    pub fn column(&mut self, what: &'static str) -> Result<usize, WireError> {
        let value = self.u64()?;
        if value > MAX_COLUMN {
            return Err(WireError::Limit {
                what,
                value,
                limit: MAX_COLUMN,
            });
        }
        Ok(value as usize)
    }

    /// Enters one level of recursive structure; fails at [`MAX_DEPTH`].
    pub fn descend(&mut self) -> Result<(), WireError> {
        if self.depth == MAX_DEPTH {
            return Err(WireError::Depth { limit: MAX_DEPTH });
        }
        self.depth += 1;
        Ok(())
    }

    /// Leaves one level of recursive structure.
    pub fn ascend(&mut self) {
        self.depth -= 1;
    }

    /// Requires the message to be fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.position == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Trailing {
                consumed: self.position,
                length: self.bytes.len(),
            })
        }
    }
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, value: i64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, value: &str) {
    put_count(out, value.len(), "string");
    out.extend_from_slice(value.as_bytes());
}

fn put_count(out: &mut Vec<u8>, count: usize, what: &str) {
    let count = u32::try_from(count).unwrap_or_else(|_| panic!("{what} too long for the wire"));
    put_u32(out, count);
}

/// A protocol value: encodable to and decodable from the version-prefixed byte layout.
///
/// `encode_body` / `decode_body` handle the value itself; [`WireCodec::encode`] and
/// [`WireCodec::decode`] add (and check) the leading [`VERSION`] byte and require full
/// consumption — they are what frames carry.
pub trait WireCodec: Sized {
    /// Appends the value's body (no version byte) to `out`.
    fn encode_body(&self, out: &mut Vec<u8>);

    /// Decodes the value's body from `reader`.
    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError>;

    /// The full message: version byte + body.
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![VERSION];
        self.encode_body(&mut out);
        out
    }

    /// Decodes a full message: checks the version byte, decodes the body, and requires
    /// every byte to be consumed. Total: any input returns `Ok` or a [`WireError`].
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut reader = Reader::new(bytes);
        let version = reader.u8()?;
        if version != VERSION {
            return Err(WireError::Version { found: version });
        }
        let value = Self::decode_body(&mut reader)?;
        reader.finish()?;
        Ok(value)
    }
}

impl WireCodec for Value {
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(value) => {
                out.push(0);
                put_i64(out, *value);
            }
            Value::UInt(value) => {
                out.push(1);
                put_u64(out, *value);
            }
            Value::String(value) => {
                out.push(2);
                put_string(out, value);
            }
        }
    }

    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(Value::Int(reader.i64()?)),
            1 => Ok(Value::UInt(reader.u64()?)),
            2 => Ok(Value::String(reader.string()?)),
            tag => Err(WireError::Tag { what: "Value", tag }),
        }
    }
}

impl WireCodec for Row {
    fn encode_body(&self, out: &mut Vec<u8>) {
        put_count(out, self.len(), "row");
        for value in self.iter() {
            value.encode_body(out);
        }
    }

    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let arity = reader.count("row arity")?;
        let mut values = Vec::new();
        for _ in 0..arity {
            values.push(Value::decode_body(reader)?);
        }
        Ok(Row::from(values))
    }
}

/// Encodes a binary expression node: tag, then both operands.
fn put_expr_pair(out: &mut Vec<u8>, tag: u8, lhs: &Expr, rhs: &Expr) {
    out.push(tag);
    lhs.encode_body(out);
    rhs.encode_body(out);
}

impl WireCodec for Expr {
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Column(index) => {
                out.push(0);
                put_u64(out, *index as u64);
            }
            Expr::Literal(value) => {
                out.push(1);
                value.encode_body(out);
            }
            Expr::Add(lhs, rhs) => put_expr_pair(out, 2, lhs, rhs),
            Expr::Sub(lhs, rhs) => put_expr_pair(out, 3, lhs, rhs),
            Expr::Mul(lhs, rhs) => put_expr_pair(out, 4, lhs, rhs),
            Expr::Eq(lhs, rhs) => put_expr_pair(out, 5, lhs, rhs),
            Expr::Ne(lhs, rhs) => put_expr_pair(out, 6, lhs, rhs),
            Expr::Lt(lhs, rhs) => put_expr_pair(out, 7, lhs, rhs),
            Expr::Le(lhs, rhs) => put_expr_pair(out, 8, lhs, rhs),
            Expr::Gt(lhs, rhs) => put_expr_pair(out, 9, lhs, rhs),
            Expr::Ge(lhs, rhs) => put_expr_pair(out, 10, lhs, rhs),
            Expr::And(lhs, rhs) => put_expr_pair(out, 11, lhs, rhs),
            Expr::Or(lhs, rhs) => put_expr_pair(out, 12, lhs, rhs),
            Expr::Not(inner) => {
                out.push(13);
                inner.encode_body(out);
            }
        }
    }

    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        reader.descend()?;
        let expr = decode_expr_unguarded(reader);
        reader.ascend();
        expr
    }
}

fn decode_expr_unguarded(reader: &mut Reader<'_>) -> Result<Expr, WireError> {
    {
        let tag = reader.u8()?;
        let pair = |reader: &mut Reader<'_>| -> Result<(Box<Expr>, Box<Expr>), WireError> {
            let lhs = Box::new(Expr::decode_body(reader)?);
            let rhs = Box::new(Expr::decode_body(reader)?);
            Ok((lhs, rhs))
        };
        match tag {
            0 => Ok(Expr::Column(reader.column("expression column")?)),
            1 => Ok(Expr::Literal(Value::decode_body(reader)?)),
            2 => pair(reader).map(|(l, r)| Expr::Add(l, r)),
            3 => pair(reader).map(|(l, r)| Expr::Sub(l, r)),
            4 => pair(reader).map(|(l, r)| Expr::Mul(l, r)),
            5 => pair(reader).map(|(l, r)| Expr::Eq(l, r)),
            6 => pair(reader).map(|(l, r)| Expr::Ne(l, r)),
            7 => pair(reader).map(|(l, r)| Expr::Lt(l, r)),
            8 => pair(reader).map(|(l, r)| Expr::Le(l, r)),
            9 => pair(reader).map(|(l, r)| Expr::Gt(l, r)),
            10 => pair(reader).map(|(l, r)| Expr::Ge(l, r)),
            11 => pair(reader).map(|(l, r)| Expr::And(l, r)),
            12 => pair(reader).map(|(l, r)| Expr::Or(l, r)),
            13 => Ok(Expr::Not(Box::new(Expr::decode_body(reader)?))),
            tag => Err(WireError::Tag { what: "Expr", tag }),
        }
    }
}

impl WireCodec for ReduceKind {
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            ReduceKind::Count => out.push(0),
            ReduceKind::Sum(column) => {
                out.push(1);
                put_u64(out, *column as u64);
            }
            ReduceKind::Min(column) => {
                out.push(2);
                put_u64(out, *column as u64);
            }
            ReduceKind::Top(column) => {
                out.push(3);
                put_u64(out, *column as u64);
            }
        }
    }

    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(ReduceKind::Count),
            1 => Ok(ReduceKind::Sum(reader.column("aggregate column")?)),
            2 => Ok(ReduceKind::Min(reader.column("aggregate column")?)),
            3 => Ok(ReduceKind::Top(reader.column("aggregate column")?)),
            tag => Err(WireError::Tag {
                what: "ReduceKind",
                tag,
            }),
        }
    }
}

impl WireCodec for Plan {
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Plan::Source(name) => {
                out.push(0);
                put_string(out, name);
            }
            Plan::Recur => out.push(1),
            Plan::Map { input, exprs } => {
                out.push(2);
                input.encode_body(out);
                put_count(out, exprs.len(), "projection list");
                for expr in exprs {
                    expr.encode_body(out);
                }
            }
            Plan::Filter { input, predicate } => {
                out.push(3);
                input.encode_body(out);
                predicate.encode_body(out);
            }
            Plan::Join { left, right, keys } => {
                out.push(4);
                left.encode_body(out);
                right.encode_body(out);
                put_count(out, keys.len(), "join key list");
                for &(left_column, right_column) in keys {
                    put_u64(out, left_column as u64);
                    put_u64(out, right_column as u64);
                }
            }
            Plan::Reduce {
                input,
                key_arity,
                kind,
            } => {
                out.push(5);
                input.encode_body(out);
                put_u64(out, *key_arity as u64);
                kind.encode_body(out);
            }
            Plan::Distinct(input) => {
                out.push(6);
                input.encode_body(out);
            }
            Plan::Concat(plans) => {
                out.push(7);
                put_count(out, plans.len(), "concat list");
                for plan in plans {
                    plan.encode_body(out);
                }
            }
            Plan::Negate(input) => {
                out.push(8);
                input.encode_body(out);
            }
            Plan::Iterate { seed, body } => {
                out.push(9);
                seed.encode_body(out);
                body.encode_body(out);
            }
        }
    }

    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        reader.descend()?;
        let plan = decode_plan_unguarded(reader);
        reader.ascend();
        plan
    }
}

fn decode_plan_unguarded(reader: &mut Reader<'_>) -> Result<Plan, WireError> {
    {
        match reader.u8()? {
            0 => Ok(Plan::Source(reader.string()?)),
            1 => Ok(Plan::Recur),
            2 => {
                let input = Box::new(Plan::decode_body(reader)?);
                let count = reader.count("projection list")?;
                let mut exprs = Vec::new();
                for _ in 0..count {
                    exprs.push(Expr::decode_body(reader)?);
                }
                Ok(Plan::Map { input, exprs })
            }
            3 => Ok(Plan::Filter {
                input: Box::new(Plan::decode_body(reader)?),
                predicate: Expr::decode_body(reader)?,
            }),
            4 => {
                let left = Box::new(Plan::decode_body(reader)?);
                let right = Box::new(Plan::decode_body(reader)?);
                let count = reader.count("join key list")?;
                let mut keys = Vec::new();
                for _ in 0..count {
                    let left_column = reader.column("join key column")?;
                    let right_column = reader.column("join key column")?;
                    keys.push((left_column, right_column));
                }
                Ok(Plan::Join { left, right, keys })
            }
            5 => Ok(Plan::Reduce {
                input: Box::new(Plan::decode_body(reader)?),
                key_arity: reader.column("reduce key arity")?,
                kind: ReduceKind::decode_body(reader)?,
            }),
            6 => Ok(Plan::Distinct(Box::new(Plan::decode_body(reader)?))),
            7 => {
                let count = reader.count("concat list")?;
                let mut plans = Vec::new();
                for _ in 0..count {
                    plans.push(Plan::decode_body(reader)?);
                }
                Ok(Plan::Concat(plans))
            }
            8 => Ok(Plan::Negate(Box::new(Plan::decode_body(reader)?))),
            9 => Ok(Plan::Iterate {
                seed: Box::new(Plan::decode_body(reader)?),
                body: Box::new(Plan::decode_body(reader)?),
            }),
            tag => Err(WireError::Tag { what: "Plan", tag }),
        }
    }
}

impl WireCodec for Command {
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Command::CreateInput { name, key_arity } => {
                out.push(0);
                put_string(out, name);
                match key_arity {
                    None => out.push(0),
                    Some(arity) => {
                        out.push(1);
                        put_u64(out, *arity as u64);
                    }
                }
            }
            Command::Update { name, row, diff } => {
                out.push(1);
                put_string(out, name);
                row.encode_body(out);
                put_i64(out, *diff as i64);
            }
            Command::AdvanceTime { epoch } => {
                out.push(2);
                put_u64(out, *epoch);
            }
            Command::Install { name, plan, locals } => {
                out.push(3);
                put_string(out, name);
                plan.encode_body(out);
                put_count(out, locals.len(), "locals list");
                for local in locals {
                    put_string(out, local);
                }
            }
            Command::Uninstall { name } => {
                out.push(4);
                put_string(out, name);
            }
            Command::Query { name } => {
                out.push(5);
                put_string(out, name);
            }
        }
    }

    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => {
                let name = reader.string()?;
                let key_arity = match reader.u8()? {
                    0 => None,
                    1 => Some(reader.column("input key arity")?),
                    tag => {
                        return Err(WireError::Tag {
                            what: "Option<key_arity>",
                            tag,
                        })
                    }
                };
                Ok(Command::CreateInput { name, key_arity })
            }
            1 => Ok(Command::Update {
                name: reader.string()?,
                row: Row::decode_body(reader)?,
                diff: reader.i64()? as isize,
            }),
            2 => Ok(Command::AdvanceTime {
                epoch: reader.u64()?,
            }),
            3 => {
                let name = reader.string()?;
                let plan = Plan::decode_body(reader)?;
                let count = reader.count("locals list")?;
                let mut locals = Vec::new();
                for _ in 0..count {
                    locals.push(reader.string()?);
                }
                Ok(Command::Install { name, plan, locals })
            }
            4 => Ok(Command::Uninstall {
                name: reader.string()?,
            }),
            5 => Ok(Command::Query {
                name: reader.string()?,
            }),
            tag => Err(WireError::Tag {
                what: "Command",
                tag,
            }),
        }
    }
}

/// What the server sends back, one per received frame, in the order the frames
/// arrived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The command executed successfully and produced no rows (`CreateInput`,
    /// `Update`, `AdvanceTime`, `Install`, `Uninstall`).
    Ok,
    /// The command was well-formed but the engine rejected it; the manager's state is
    /// unchanged.
    PlanError {
        /// The stable error class (see `kpg_plan::PlanError::code`).
        code: String,
        /// The human-readable description.
        message: String,
    },
    /// A `Query`'s settled, consolidated answer: `rows[i]` occurs with multiplicity
    /// `diffs[i]`, sorted by row, zero multiplicities omitted.
    QueryResults {
        /// The distinct rows.
        rows: Vec<Row>,
        /// The multiplicities, parallel to `rows`.
        diffs: Vec<i64>,
    },
    /// The received frame never reached the engine: it was oversized or its payload
    /// failed to decode. The stream stays usable (subsequent frames are processed).
    WireError {
        /// The decode failure, rendered.
        message: String,
    },
}

impl WireCodec for Response {
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(0),
            Response::PlanError { code, message } => {
                out.push(1);
                put_string(out, code);
                put_string(out, message);
            }
            Response::QueryResults { rows, diffs } => {
                out.push(2);
                debug_assert_eq!(rows.len(), diffs.len(), "rows and diffs are parallel");
                put_count(out, rows.len(), "result set");
                for (row, diff) in rows.iter().zip(diffs) {
                    row.encode_body(out);
                    put_i64(out, *diff);
                }
            }
            Response::WireError { message } => {
                out.push(3);
                put_string(out, message);
            }
        }
    }

    fn decode_body(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(Response::Ok),
            1 => Ok(Response::PlanError {
                code: reader.string()?,
                message: reader.string()?,
            }),
            2 => {
                let count = reader.count("result set")?;
                let mut rows = Vec::new();
                let mut diffs = Vec::new();
                for _ in 0..count {
                    rows.push(Row::decode_body(reader)?);
                    diffs.push(reader.i64()?);
                }
                Ok(Response::QueryResults { rows, diffs })
            }
            3 => Ok(Response::WireError {
                message: reader.string()?,
            }),
            tag => Err(WireError::Tag {
                what: "Response",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_byte_is_checked() {
        let mut bytes = Command::AdvanceTime { epoch: 7 }.encode();
        assert_eq!(bytes[0], VERSION);
        bytes[0] = 9;
        assert_eq!(
            Command::decode(&bytes),
            Err(WireError::Version { found: 9 })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Command::Query {
            name: "q".to_string(),
        }
        .encode();
        let clean = Command::decode(&bytes);
        assert!(clean.is_ok());
        bytes.push(0);
        assert!(matches!(
            Command::decode(&bytes),
            Err(WireError::Trailing { .. })
        ));
    }

    #[test]
    fn column_limits_are_enforced() {
        let oversized = Command::CreateInput {
            name: "wide".to_string(),
            key_arity: Some((MAX_COLUMN + 1) as usize),
        };
        assert!(matches!(
            Command::decode(&oversized.encode()),
            Err(WireError::Limit { .. })
        ));
    }

    #[test]
    fn hostile_counts_fail_before_allocating() {
        // Install with a locals count of u32::MAX but almost no bytes behind it.
        let mut bytes = vec![VERSION, 3];
        put_string(&mut bytes, "q");
        Plan::Recur.encode_body(&mut bytes);
        put_u32(&mut bytes, u32::MAX);
        assert!(matches!(
            Command::decode(&bytes),
            Err(WireError::Limit { .. })
        ));
    }
}
