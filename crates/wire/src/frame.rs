//! Stream framing: 4-byte big-endian length prefix, then the payload.
//!
//! Frames are the unit of resynchronization. Because the length travels outside the
//! payload, a payload that fails to decode costs exactly one frame: the reader is
//! already positioned at the next length prefix, and an oversized frame is *skipped*
//! (its bytes read and discarded in bounded chunks, never buffered), so a hostile or
//! buggy peer cannot force an allocation larger than the configured limit or knock the
//! stream out of sync.

use std::io::{self, Read, Write};

/// One frame read from a stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete payload, at most the reader's limit.
    Payload(Vec<u8>),
    /// The peer announced a payload of this many bytes, above the reader's limit. The
    /// bytes were discarded; the stream is positioned at the next frame.
    TooLarge(u64),
}

/// Writes one frame: the payload's length as a big-endian `u32`, then the payload.
///
/// # Panics
///
/// If `payload` exceeds `u32::MAX` bytes (unrepresentable in the frame header).
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let length = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
    writer.write_all(&length.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame, buffering at most `limit` bytes.
///
/// Returns `Ok(None)` on a clean end of stream (EOF at a frame boundary); EOF inside a
/// frame is an [`io::ErrorKind::UnexpectedEof`] error. A frame announcing a payload
/// larger than `limit` is discarded in bounded chunks and reported as
/// [`Frame::TooLarge`], leaving the stream positioned at the next frame.
pub fn read_frame(reader: &mut impl Read, limit: usize) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match reader.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            Ok(read) => got += read,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error) => return Err(error),
        }
    }
    let length = u64::from(u32::from_be_bytes(header));
    if length > limit as u64 {
        // Skip the payload without buffering it: fixed scratch, bounded per read.
        let copied = io::copy(&mut reader.take(length), &mut io::sink())?;
        if copied < length {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside an oversized frame",
            ));
        }
        return Ok(Some(Frame::TooLarge(length)));
    }
    let mut payload = vec![0u8; length as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(Frame::Payload(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"beta").unwrap();
        let mut cursor = Cursor::new(stream);
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap(),
            Some(Frame::Payload(b"alpha".to_vec()))
        );
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap(),
            Some(Frame::Payload(Vec::new()))
        );
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap(),
            Some(Frame::Payload(b"beta".to_vec()))
        );
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_skipped_not_buffered() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[7u8; 100]).unwrap();
        write_frame(&mut stream, b"next").unwrap();
        let mut cursor = Cursor::new(stream);
        assert_eq!(
            read_frame(&mut cursor, 10).unwrap(),
            Some(Frame::TooLarge(100))
        );
        // The stream resynchronized at the following frame.
        assert_eq!(
            read_frame(&mut cursor, 10).unwrap(),
            Some(Frame::Payload(b"next".to_vec()))
        );
    }

    #[test]
    fn truncation_inside_a_frame_is_an_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"abcdef").unwrap();
        for cut in 1..stream.len() {
            let mut cursor = Cursor::new(&stream[..cut]);
            let result = read_frame(&mut cursor, 64);
            assert!(
                result.is_err(),
                "truncation at byte {cut} must error, got {result:?}"
            );
        }
    }
}
