//! The network byte boundary: a binary codec for the runtime-plan protocol.
//!
//! [`Manager`](kpg_plan::Manager) executes a [`Command`](kpg_plan::Command) stream that
//! is plain data; this crate is what lets that stream cross a socket. It defines:
//!
//! * A **codec** ([`WireCodec`]) for every protocol value — `Value`, `Row`, `Expr`,
//!   `Plan`, `Command`, and the server's [`Response`] — as a version-prefixed byte
//!   string. Encoding is manual and dependency-free (no derives, no serde); the layout
//!   is documented per type in [`codec`].
//! * **Total decoders**: malformed bytes return a [`WireError`] — never a panic, and
//!   never an unbounded allocation. Every length and count is checked against the bytes
//!   actually present, recursive structures ([`Expr`](kpg_plan::Expr),
//!   [`Plan`](kpg_plan::Plan)) are depth-limited ([`MAX_DEPTH`]), and column indices are
//!   bounded ([`MAX_COLUMN`]) so a hostile message cannot make the *executor* allocate
//!   absurd key vectors either.
//! * **Framing** ([`frame`]): each message travels as a 4-byte big-endian length prefix
//!   followed by the payload. A reader enforces a configurable frame-size limit
//!   ([`DEFAULT_FRAME_LIMIT`]); oversized frames are *discarded without buffering*, so
//!   the stream stays in sync and the next frame still decodes.
//!
//! The frame layout, version byte, and error taxonomy are documented in the README's
//! "Network protocol" section.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod assemble;
pub mod codec;
pub mod frame;

pub use assemble::FrameAssembler;
pub use codec::{
    Reader, Response, WireCodec, WireError, DEFAULT_FRAME_LIMIT, MAX_COLUMN, MAX_DEPTH, VERSION,
};
pub use frame::{read_frame, write_frame, Frame};
