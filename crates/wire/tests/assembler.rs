//! The incremental-assembly model: [`FrameAssembler`] fed arbitrarily chunked
//! bytes must produce *exactly* the frame sequence the blocking
//! [`read_frame`] reference produces over the same stream — including the
//! resync guarantees after oversized and corrupted frames.
//!
//! Chunkings exercised: one byte per readiness event (the pathological slow
//! peer), seeded random cuts, and chunk boundaries placed deliberately inside
//! headers and across frame boundaries.

mod common;

use std::io::Cursor;

use common::{cases, Generator};
use kpg_timestamp::rng::SmallRng;
use kpg_wire::{read_frame, write_frame, Frame, FrameAssembler, WireCodec};

const LIMIT: usize = 1 << 16;

/// The blocking reader as ground truth: the frame sequence of `wire` read to EOF.
fn reference_frames(wire: &[u8], limit: usize) -> Vec<Frame> {
    let mut cursor = Cursor::new(wire);
    let mut frames = Vec::new();
    while let Ok(Some(frame)) = read_frame(&mut cursor, limit) {
        frames.push(frame);
    }
    frames
}

/// Feeds `wire` to a fresh assembler in the given chunk sizes and collects every
/// completed frame.
fn assemble_chunked(wire: &[u8], chunks: impl Iterator<Item = usize>, limit: usize) -> Vec<Frame> {
    let mut assembler = FrameAssembler::new(limit);
    let mut frames = Vec::new();
    let mut offset = 0;
    for chunk in chunks {
        if offset >= wire.len() {
            break;
        }
        let end = (offset + chunk.max(1)).min(wire.len());
        assembler.ingest(&wire[offset..end]);
        offset = end;
        while let Some(frame) = assembler.next_frame() {
            frames.push(frame);
        }
    }
    assert!(offset >= wire.len(), "chunk iterator ended early");
    assert!(
        assembler.is_idle(),
        "assembler not at a frame boundary after a whole-frame stream"
    );
    frames
}

#[test]
fn one_byte_per_event_matches_blocking_reader() {
    let mut generator = Generator::new(0xA55E);
    for _ in 0..cases(50) {
        let mut wire = Vec::new();
        for _ in 0..4 {
            write_frame(&mut wire, &generator.command().encode()).unwrap();
        }
        let expected = reference_frames(&wire, LIMIT);
        assert_eq!(expected.len(), 4);
        let got = assemble_chunked(&wire, std::iter::repeat(1), LIMIT);
        assert_eq!(got, expected, "1-byte chunking diverged from read_frame");
    }
}

#[test]
fn oversized_frame_skips_across_many_events_without_buffering() {
    // A 1 MiB announced frame against a 4 KiB limit, delivered in 1000-byte
    // chunks: must surface as TooLarge with the announced size, hold at most a
    // header's worth of memory throughout, and leave the next frame intact.
    let limit = 4096;
    let huge = vec![0xAB; 1 << 20];
    let mut wire = Vec::new();
    write_frame(&mut wire, &huge).unwrap();
    write_frame(&mut wire, b"after").unwrap();

    let mut assembler = FrameAssembler::new(limit);
    for chunk in wire.chunks(1000) {
        assembler.ingest(chunk);
        assert!(
            assembler.buffered_bytes() <= limit + 4 + b"after".len() + 4,
            "oversized payload was buffered"
        );
    }
    assert_eq!(assembler.next_frame(), Some(Frame::TooLarge(1 << 20)));
    assert_eq!(
        assembler.next_frame(),
        Some(Frame::Payload(b"after".to_vec()))
    );
    assert_eq!(assembler.next_frame(), None);
    assert!(assembler.is_idle());
}

#[test]
fn resync_after_payload_corruption_costs_exactly_one_frame() {
    // Corrupt every byte position of a middle frame's payload in turn: the
    // corrupted frame still arrives as a (garbage) payload of the right length —
    // alignment lives in the header, outside the payload — and the following
    // frame always survives byte-identical.
    let mut generator = Generator::new(0xC0DE);
    let middle = generator.command().encode();
    for position in 0..middle.len() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        let start = wire.len() + 4;
        write_frame(&mut wire, &middle).unwrap();
        write_frame(&mut wire, b"last").unwrap();
        wire[start + position] ^= 0xFF;

        let frames = assemble_chunked(&wire, std::iter::repeat(7), LIMIT);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], Frame::Payload(b"first".to_vec()));
        match &frames[1] {
            Frame::Payload(payload) => assert_eq!(payload.len(), middle.len()),
            other => panic!("corrupted payload changed the frame kind: {other:?}"),
        }
        assert_eq!(frames[2], Frame::Payload(b"last".to_vec()));
    }
}

#[test]
fn seeded_random_chunkings_match_blocking_reader() {
    let mut rng = SmallRng::seed_from_u64(0xD1CE);
    for _ in 0..cases(100) {
        // A stream mixing normal, empty, and oversized frames.
        let limit = 512;
        let mut wire = Vec::new();
        let frames = rng.gen_range(1..6usize);
        for _ in 0..frames {
            match rng.gen_range(0..4u32) {
                0 => write_frame(&mut wire, &[]).unwrap(),
                1 => {
                    let size = rng.gen_range(limit + 1..limit * 4);
                    write_frame(&mut wire, &vec![7u8; size]).unwrap();
                }
                _ => {
                    let size = rng.gen_range(1..limit);
                    write_frame(&mut wire, &vec![3u8; size]).unwrap();
                }
            }
        }
        let expected = reference_frames(&wire, limit);
        assert_eq!(expected.len(), frames);
        let total = wire.len();
        let cuts = std::iter::from_fn(|| Some(rng.gen_range(1..=total.min(97))));
        let got = assemble_chunked(&wire, cuts, limit);
        assert_eq!(got, expected, "random chunking diverged from read_frame");
    }
}

#[test]
fn partial_frame_is_not_idle() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"abc").unwrap();
    let mut assembler = FrameAssembler::new(LIMIT);

    // Mid-header.
    assembler.ingest(&wire[..2]);
    assert!(!assembler.is_idle());
    // Mid-payload.
    assembler.ingest(&wire[2..5]);
    assert!(!assembler.is_idle());
    // Complete but unpopped.
    assembler.ingest(&wire[5..]);
    assert!(!assembler.is_idle());
    assert_eq!(
        assembler.next_frame(),
        Some(Frame::Payload(b"abc".to_vec()))
    );
    assert!(assembler.is_idle());
}
