//! The seeded protocol-value generator shared by the wire model tests.
//!
//! Produces random `Value`/`Row`/`Expr`/`Plan`/`Command`/`Response` trees from the
//! in-tree PRNG, biased toward the codec's edge cases: empty and multi-byte-unicode
//! strings, embedded NULs, extreme integers, empty rows, deep nesting up to the
//! protocol depth limit, and column indices at the protocol bound.
#![allow(dead_code)] // each test binary uses its own subset of the generator

use kpg_plan::{Command, Expr, Plan, ReduceKind, Row, Value};
use kpg_timestamp::rng::SmallRng;
use kpg_wire::{Response, MAX_COLUMN, MAX_DEPTH};

/// A deterministic generator of protocol values.
pub struct Generator {
    rng: SmallRng,
}

impl Generator {
    pub fn new(seed: u64) -> Self {
        Generator {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn string(&mut self) -> String {
        const POOL: &[&str] = &[
            "",
            "a",
            "edges",
            "query-name",
            "\u{0}embedded\u{0}nul",
            "snowman \u{2603}",
            "emoji \u{1F30A} wave",
            "ÅÄÖ åäö",
            "日本語のテキスト",
            "tab\tnewline\nquote\"backslash\\",
        ];
        match self.rng.gen_range(0..4u32) {
            0 => POOL[self.rng.gen_range(0..POOL.len())].to_string(),
            1 => {
                // Random-length ASCII, occasionally longer than the row prefix window.
                let length = self.rng.gen_range(0..24usize);
                (0..length)
                    .map(|_| char::from(self.rng.gen_range(0x20u32..0x7f) as u8))
                    .collect()
            }
            _ => {
                // Random unicode scalars (skipping the surrogate gap).
                let length = self.rng.gen_range(0..8usize);
                (0..length)
                    .map(|_| {
                        let scalar = self.rng.gen_range(1u32..0xD7FF);
                        char::from_u32(scalar).unwrap_or('\u{FFFD}')
                    })
                    .collect()
            }
        }
    }

    pub fn value(&mut self) -> Value {
        match self.rng.gen_range(0..8u32) {
            0 => Value::Int(i64::MIN),
            1 => Value::Int(i64::MAX),
            2 => Value::Int(self.rng.gen_range(-1000i64..1000)),
            3 => Value::UInt(u64::MAX),
            4 => Value::UInt(self.rng.gen_range(0u64..1000)),
            5 => Value::UInt(self.rng.gen_range(0u64..=u64::MAX)),
            _ => Value::String(self.string()),
        }
    }

    pub fn row(&mut self) -> Row {
        let arity = self.rng.gen_range(0..6usize);
        Row::from((0..arity).map(|_| self.value()).collect::<Vec<_>>())
    }

    pub fn column(&mut self) -> usize {
        match self.rng.gen_range(0..8u32) {
            0 => MAX_COLUMN as usize,
            _ => self.rng.gen_range(0..8usize),
        }
    }

    pub fn expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_range(0..3u32) == 0 {
            return match self.rng.gen_range(0..2u32) {
                0 => Expr::Column(self.column()),
                _ => Expr::Literal(self.value()),
            };
        }
        let lhs = Box::new(self.expr(depth - 1));
        match self.rng.gen_range(0..12u32) {
            0 => Expr::Not(lhs),
            tag => {
                let rhs = Box::new(self.expr(depth - 1));
                match tag {
                    1 => Expr::Add(lhs, rhs),
                    2 => Expr::Sub(lhs, rhs),
                    3 => Expr::Mul(lhs, rhs),
                    4 => Expr::Eq(lhs, rhs),
                    5 => Expr::Ne(lhs, rhs),
                    6 => Expr::Lt(lhs, rhs),
                    7 => Expr::Le(lhs, rhs),
                    8 => Expr::Gt(lhs, rhs),
                    9 => Expr::Ge(lhs, rhs),
                    10 => Expr::And(lhs, rhs),
                    _ => Expr::Or(lhs, rhs),
                }
            }
        }
    }

    pub fn reduce_kind(&mut self) -> ReduceKind {
        match self.rng.gen_range(0..4u32) {
            0 => ReduceKind::Count,
            1 => ReduceKind::Sum(self.column()),
            2 => ReduceKind::Min(self.column()),
            _ => ReduceKind::Top(self.column()),
        }
    }

    /// A random plan tree of at most `depth` further levels. The codec is pure syntax,
    /// so the generator makes no attempt at *valid* plans (empty concats, stray
    /// `Recur`s, and unknown sources are all fair game for the byte boundary).
    pub fn plan(&mut self, depth: usize) -> Plan {
        if depth == 0 || self.rng.gen_range(0..4u32) == 0 {
            return match self.rng.gen_range(0..3u32) {
                0 => Plan::Recur,
                _ => Plan::Source(self.string()),
            };
        }
        match self.rng.gen_range(0..8u32) {
            0 => Plan::Map {
                input: Box::new(self.plan(depth - 1)),
                exprs: {
                    let count = self.rng.gen_range(0..3usize);
                    (0..count).map(|_| self.expr(depth.min(3))).collect()
                },
            },
            1 => Plan::Filter {
                input: Box::new(self.plan(depth - 1)),
                predicate: self.expr(depth.min(3)),
            },
            2 => Plan::Join {
                left: Box::new(self.plan(depth - 1)),
                right: Box::new(self.plan(depth - 1)),
                keys: {
                    let count = self.rng.gen_range(0..3usize);
                    (0..count).map(|_| (self.column(), self.column())).collect()
                },
            },
            3 => Plan::Reduce {
                input: Box::new(self.plan(depth - 1)),
                key_arity: self.column(),
                kind: self.reduce_kind(),
            },
            4 => Plan::Distinct(Box::new(self.plan(depth - 1))),
            5 => Plan::Concat({
                let count = self.rng.gen_range(0..3usize);
                (0..count).map(|_| self.plan(depth - 1)).collect()
            }),
            6 => Plan::Negate(Box::new(self.plan(depth - 1))),
            _ => Plan::Iterate {
                seed: Box::new(self.plan(depth - 1)),
                body: Box::new(self.plan(depth - 1)),
            },
        }
    }

    pub fn command(&mut self) -> Command {
        match self.rng.gen_range(0..6u32) {
            0 => Command::CreateInput {
                name: self.string(),
                key_arity: match self.rng.gen_range(0..3u32) {
                    0 => None,
                    _ => Some(self.column()),
                },
            },
            1 => Command::Update {
                name: self.string(),
                row: self.row(),
                diff: self.rng.gen_range(-5i64..=5) as isize,
            },
            2 => Command::AdvanceTime {
                epoch: self.rng.gen_range(0u64..=u64::MAX),
            },
            3 => Command::Install {
                name: self.string(),
                plan: {
                    let depth = self.pick_depth();
                    self.plan(depth)
                },
                locals: {
                    let count = self.rng.gen_range(0..3usize);
                    (0..count).map(|_| self.string()).collect()
                },
            },
            4 => Command::Uninstall {
                name: self.string(),
            },
            _ => Command::Query {
                name: self.string(),
            },
        }
    }

    pub fn response(&mut self) -> Response {
        match self.rng.gen_range(0..4u32) {
            0 => Response::Ok,
            1 => Response::PlanError {
                code: self.string(),
                message: self.string(),
            },
            2 => {
                let count = self.rng.gen_range(0..6usize);
                let rows = (0..count).map(|_| self.row()).collect();
                let diffs = (0..count)
                    .map(|_| self.rng.gen_range(-100i64..100))
                    .collect();
                Response::QueryResults { rows, diffs }
            }
            _ => Response::WireError {
                message: self.string(),
            },
        }
    }

    /// Mostly-shallow depth budgets with an occasional run near the protocol limit.
    /// `Expr` and `Plan` nesting share one decode-depth budget, so the deep case
    /// leaves headroom for the expressions `Map`/`Filter` nodes embed.
    fn pick_depth(&mut self) -> usize {
        match self.rng.gen_range(0..8u32) {
            0 => MAX_DEPTH - 6,
            _ => self.rng.gen_range(0..5usize),
        }
    }
}

/// A linear plan chain exactly `depth` plans deep (so `depth` nested decode calls).
pub fn chain_plan(depth: usize) -> Plan {
    let mut plan = Plan::Source("base".to_string());
    for _ in 1..depth {
        plan = Plan::Distinct(Box::new(plan));
    }
    plan
}

/// A linear expression chain exactly `depth` expressions deep.
pub fn chain_expr(depth: usize) -> Expr {
    let mut expr = Expr::Column(0);
    for _ in 1..depth {
        expr = Expr::Not(Box::new(expr));
    }
    expr
}

/// The iteration budget for a seeded sweep: `default` natively, shrunk under Miri
/// (interpretation is orders of magnitude slower), overridable either way with
/// `KPG_MODEL_CASES` — the slow CI lane raises it, the Miri lane can pin it.
pub fn cases(default: usize) -> usize {
    let scaled = if cfg!(miri) {
        (default / 25).max(2)
    } else {
        default
    };
    std::env::var("KPG_MODEL_CASES")
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(scaled)
}
