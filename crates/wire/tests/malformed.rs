//! The adversarial decode test: every mutation of a valid message must be *rejected or
//! reinterpreted*, never panic, never allocate past the bytes present — and a valid
//! frame following a rejected one must still decode (stream resync).
//!
//! Mutations are derived from the same seeded generator as the roundtrip model, so the
//! corpus covers the whole grammar: truncation at every byte, random bit flips, and
//! corrupted length/count fields.

mod common;

use std::io::Cursor;

use common::{cases, Generator};
use kpg_plan::Command;
use kpg_timestamp::rng::SmallRng;
use kpg_wire::{read_frame, write_frame, Frame, Response, WireCodec, WireError};

/// Decoding must be total: `Ok` or `WireError`, never a panic. When a mutation happens
/// to decode (bit flips can land on payload bytes and just change a number), the
/// decoded value must itself re-encode and roundtrip — the codec stays consistent on
/// whatever it accepts.
fn assert_total(bytes: &[u8]) {
    if let Ok(command) = Command::decode(bytes) {
        let encoded = command.encode();
        assert_eq!(
            Command::decode(&encoded).as_ref(),
            Ok(&command),
            "a mutated-but-accepted message failed to re-roundtrip"
        );
    }
}

#[test]
fn every_truncation_of_every_sample_is_rejected() {
    let mut generator = Generator::new(0xBADBEEF);
    for _ in 0..cases(250) {
        let command = generator.command();
        let encoded = command.encode();
        for cut in 0..encoded.len() {
            let truncated = &encoded[..cut];
            assert!(
                Command::decode(truncated).is_err(),
                "a strict prefix (length {cut} of {}) of a valid encoding decoded",
                encoded.len()
            );
        }
    }
}

#[test]
fn random_bit_flips_never_panic_and_stay_consistent() {
    let mut generator = Generator::new(0xF1B);
    let mut rng = SmallRng::seed_from_u64(0xF1175);
    for _ in 0..cases(250) {
        let encoded = generator.command().encode();
        for _ in 0..16 {
            let mut mutated = encoded.clone();
            let bit = rng.gen_range(0..mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            assert_total(&mutated);
        }
    }
}

#[test]
fn corrupted_length_fields_fail_before_allocating() {
    let mut generator = Generator::new(0x1E4);
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..cases(250) {
        let encoded = generator.command().encode();
        // Saturate 4 random aligned byte positions — whatever field they land in
        // (length, count, tag, payload) becomes extreme. A count of ~u32::MAX against
        // a few hundred remaining bytes must be refused up front, not allocated.
        for _ in 0..8 {
            let mut mutated = encoded.clone();
            for _ in 0..4 {
                let position = rng.gen_range(0..mutated.len());
                mutated[position] = 0xFF;
            }
            assert_total(&mutated);
        }
        // And deterministically: every 4-byte window forced to u32::MAX.
        for start in 0..encoded.len().saturating_sub(3) {
            let mut mutated = encoded.clone();
            mutated[start..start + 4].copy_from_slice(&[0xFF; 4]);
            assert_total(&mutated);
        }
    }
}

#[test]
fn responses_are_total_too() {
    let mut generator = Generator::new(0x5EA);
    for _ in 0..cases(120) {
        let encoded = generator.response().encode();
        for cut in 0..encoded.len() {
            assert!(Response::decode(&encoded[..cut]).is_err());
        }
        for position in 0..encoded.len() {
            let mut mutated = encoded.clone();
            mutated[position] ^= 0xA5;
            if let Ok(response) = Response::decode(&mutated) {
                assert_eq!(Response::decode(&response.encode()).as_ref(), Ok(&response));
            }
        }
    }
}

/// A rejected payload costs exactly one frame: the next frame on the stream decodes
/// untouched. This is the property that lets the server answer `WireError` and keep
/// the connection.
#[test]
fn a_valid_frame_after_a_rejected_one_still_decodes() {
    let mut generator = Generator::new(0x4E5C);
    for _ in 0..cases(50) {
        let good = generator.command();
        let mut corrupt = good.encode();
        corrupt[0] ^= 0xFF; // bad version byte: guaranteed rejection
        let follow_up = generator.command();

        let mut stream = Vec::new();
        write_frame(&mut stream, &corrupt).unwrap();
        write_frame(&mut stream, &follow_up.encode()).unwrap();

        let mut cursor = Cursor::new(stream);
        let first = match read_frame(&mut cursor, 1 << 20).unwrap() {
            Some(Frame::Payload(payload)) => payload,
            other => panic!("expected a payload frame, got {other:?}"),
        };
        assert!(matches!(
            Command::decode(&first),
            Err(WireError::Version { .. })
        ));
        let second = match read_frame(&mut cursor, 1 << 20).unwrap() {
            Some(Frame::Payload(payload)) => payload,
            other => panic!("expected a payload frame, got {other:?}"),
        };
        assert_eq!(Command::decode(&second), Ok(follow_up));
    }
}

/// The frame limit bounds what a peer can make the reader buffer: an oversized frame
/// is skipped (not stored), reported, and the stream stays in sync.
#[test]
fn frame_limit_is_enforced_with_resync() {
    let limit = 256;
    let oversized = vec![0x42u8; 4 * limit];
    let follow_up = Command::AdvanceTime { epoch: 3 };

    let mut stream = Vec::new();
    write_frame(&mut stream, &oversized).unwrap();
    write_frame(&mut stream, &follow_up.encode()).unwrap();

    let mut cursor = Cursor::new(stream);
    assert_eq!(
        read_frame(&mut cursor, limit).unwrap(),
        Some(Frame::TooLarge(4 * limit as u64))
    );
    match read_frame(&mut cursor, limit).unwrap() {
        Some(Frame::Payload(payload)) => {
            assert_eq!(Command::decode(&payload), Ok(follow_up));
        }
        other => panic!("expected the follow-up frame, got {other:?}"),
    }
}
