//! The codec model test: `decode(encode(x)) == x` over seeded random protocol trees.
//!
//! The generator (see `common`) is biased toward the representational edge cases —
//! empty and multi-byte-unicode strings, embedded NULs, extreme integers, empty rows,
//! column indices at the protocol bound, nesting near the depth limit — and the
//! samples here exceed the thousand-tree bar the acceptance criteria set.

mod common;

use common::{cases, chain_expr, chain_plan, Generator};
use kpg_plan::{Command, Expr, Plan, Row, Value};
use kpg_wire::{Response, WireCodec, WireError, MAX_DEPTH};

fn assert_roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: &T) {
    let encoded = value.encode();
    let decoded = T::decode(&encoded);
    assert_eq!(decoded.as_ref(), Ok(value), "roundtrip diverged");
}

#[test]
fn commands_roundtrip_over_a_thousand_seeded_trees() {
    let mut generator = Generator::new(0xC0FFEE);
    for _ in 0..cases(1_200) {
        assert_roundtrip(&generator.command());
    }
}

#[test]
fn values_rows_exprs_plans_and_responses_roundtrip() {
    let mut generator = Generator::new(42);
    for _ in 0..cases(400) {
        assert_roundtrip(&generator.value());
        assert_roundtrip(&generator.row());
        assert_roundtrip(&generator.expr(4));
        assert_roundtrip(&generator.plan(4));
        assert_roundtrip(&generator.response());
    }
}

#[test]
fn edge_strings_and_rows_roundtrip() {
    assert_roundtrip(&Value::String(String::new()));
    assert_roundtrip(&Value::String("\u{0}\u{0}".to_string()));
    assert_roundtrip(&Value::String("日本語 🌊 mixed ascii".to_string()));
    assert_roundtrip(&Row::new());
    assert_roundtrip(&Row::from(vec![Value::String(String::new())]));
    assert_roundtrip(&Command::Query {
        name: String::new(),
    });
    assert_roundtrip(&Response::QueryResults {
        rows: vec![],
        diffs: vec![],
    });
}

#[test]
fn nesting_at_the_depth_limit_roundtrips_and_beyond_is_rejected() {
    // Exactly MAX_DEPTH nested nodes: the deepest message the protocol admits.
    assert_roundtrip(&chain_plan(MAX_DEPTH));
    assert_roundtrip(&chain_expr(MAX_DEPTH));

    // One deeper: encoding succeeds (encoding is local data, not adversarial), but the
    // total decoder refuses rather than risking the stack.
    let too_deep_plan = chain_plan(MAX_DEPTH + 1).encode();
    assert_eq!(
        Plan::decode(&too_deep_plan),
        Err(WireError::Depth { limit: MAX_DEPTH })
    );
    let too_deep_expr = chain_expr(MAX_DEPTH + 1).encode();
    assert_eq!(
        Expr::decode(&too_deep_expr),
        Err(WireError::Depth { limit: MAX_DEPTH })
    );

    // Depth is per message, not cumulative across a stream: a deep-but-legal message
    // decodes even right after another one did.
    assert_roundtrip(&chain_plan(MAX_DEPTH));
}

/// The §6.2 query classes — the plans a real session installs — roundtrip exactly.
#[test]
fn representative_session_commands_roundtrip() {
    let two_hop = Plan::source("roots")
        .join(Plan::source("edges"), vec![(0, 0)])
        .join(Plan::source("edges"), vec![(1, 0)])
        .map(vec![Expr::col(1), Expr::col(2)])
        .distinct();
    assert_roundtrip(&Command::Install {
        name: "two-hop".to_string(),
        plan: two_hop,
        locals: vec!["roots".to_string()],
    });
    let reach_body = Plan::source("roots")
        .concat(
            Plan::Recur
                .join(Plan::source("edges"), vec![(0, 0)])
                .map(vec![Expr::col(1)]),
        )
        .distinct();
    assert_roundtrip(&Command::Install {
        name: "reach".to_string(),
        plan: Plan::source("roots").iterate(reach_body),
        locals: vec![],
    });
    assert_roundtrip(&Command::Install {
        name: "filtered-degrees".to_string(),
        plan: Plan::source("edges")
            .filter(
                Expr::col(1)
                    .ge(Expr::lit(10u64))
                    .and(Expr::col(0).ne(Expr::col(1))),
            )
            .reduce(1, kpg_plan::ReduceKind::Count),
        locals: vec![],
    });
}
