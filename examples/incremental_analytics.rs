//! Incremental view maintenance of a relational query while the fact table streams in,
//! compared against full re-evaluation (the §6.1 scenario in miniature).
//!
//! Run with `cargo run --release --example incremental_analytics`.

use shared_arrangements::prelude::*;
use shared_arrangements::relational::baseline;
use shared_arrangements::relational::data::generate;
use shared_arrangements::relational::queries::{build_query, relations};

fn main() {
    let db = generate(0.5, 7);
    let batches = 10usize;
    let query = 3u32;

    execute(Config::new(1), move |worker| {
        let db = generate(0.5, 7);
        // Install the standing query under a name, so a longer-lived session could
        // retire it with `worker.uninstall(...)` once it stops being useful.
        let (mut inputs, probe, results) = worker.install("tpch-view", |builder| {
            let (inputs, rels) = relations(builder);
            let result = build_query(query, &rels);
            (inputs, result.probe(), result.capture())
        });

        // Reference relations load up front.
        for o in db.orders.iter() {
            inputs.orders.insert(o.clone());
        }
        for c in db.customers.iter() {
            inputs.customer.insert(c.clone());
        }
        for s in db.suppliers.iter() {
            inputs.supplier.insert(s.clone());
        }
        for p in db.parts.iter() {
            inputs.part.insert(p.clone());
        }

        // Lineitems stream in batches; the query output is maintained after each batch.
        let chunk = db.lineitems.len() / batches + 1;
        for (round, lines) in db.lineitems.chunks(chunk).enumerate() {
            for line in lines {
                inputs.lineitem.insert(line.clone());
            }
            inputs.advance_to(round as u64 + 1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(round as u64 + 1)));
            println!(
                "after batch {round}: {} output updates so far",
                results.borrow().len()
            );
        }
    });

    // The differential result after the last batch matches full re-evaluation.
    let reference = baseline::evaluate(query, &db);
    println!(
        "full re-evaluation of q{query} produces {} groups (see tests for the equivalence check)",
        reference.len()
    );
}
