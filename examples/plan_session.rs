//! Runtime query plans end to end: a `Manager` command loop that creates inputs,
//! installs queries *described as data*, reads answers, and retires queries — the
//! engine a network query server would drive, runnable today from an in-process
//! command stream (paper §6.2's interactive pattern without recompilation).
//!
//! Run with `cargo run --release --example plan_session`.

use shared_arrangements::plan::{Command, Expr, Manager, Plan, ReduceKind, Response};
use shared_arrangements::prelude::*;

fn edge(src: u32, dst: u32) -> shared_arrangements::plan::Row {
    vec![src.into(), dst.into()].into()
}

fn main() {
    execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        let run = |worker: &mut Worker, manager: &mut Manager, command: Command| {
            manager.execute(worker, command).expect("session command")
        };

        // One shared input, keyed by source node so joins on it import the base
        // arrangement directly.
        run(
            worker,
            &mut manager,
            Command::CreateInput {
                name: "edges".into(),
                key_arity: Some(1),
            },
        );
        for src in 0..1_000u32 {
            for offset in 1..=3u32 {
                run(
                    worker,
                    &mut manager,
                    Command::Update {
                        name: "edges".into(),
                        row: edge(src, (src + offset) % 1_000),
                        diff: 1,
                    },
                );
            }
        }

        // Query 1, as data: out-degree counts — group edges by source, count.
        run(
            worker,
            &mut manager,
            Command::Install {
                name: "degrees".into(),
                plan: Plan::source("edges").reduce(1, ReduceKind::Count),
                locals: vec![],
            },
        );

        // Query 2, as data: the 2-hop neighbourhood of interactively posed roots.
        // `roots` is a query-local input, created inside this query's dataflow.
        let two_hop = Plan::source("roots")
            .join(Plan::source("edges"), vec![(0, 0)]) // [root, mid]
            .join(Plan::source("edges"), vec![(1, 0)]) // [mid, root, dst]
            .map(vec![Expr::col(1), Expr::col(2)]) // [root, dst]
            .distinct();
        run(
            worker,
            &mut manager,
            Command::Install {
                name: "two-hop".into(),
                plan: two_hop,
                locals: vec!["roots".into()],
            },
        );
        run(
            worker,
            &mut manager,
            Command::Update {
                name: "roots".into(),
                row: vec![7u32.into()].into(),
                diff: 1,
            },
        );

        run(worker, &mut manager, Command::AdvanceTime { epoch: 1 });
        manager.settle(worker);

        let Response::Rows(degrees) = run(
            worker,
            &mut manager,
            Command::Query {
                name: "degrees".into(),
            },
        ) else {
            panic!("Query returns rows")
        };
        let Response::Rows(two_hops) = run(
            worker,
            &mut manager,
            Command::Query {
                name: "two-hop".into(),
            },
        ) else {
            panic!("Query returns rows")
        };
        println!(
            "installed {:?} over inputs {:?}",
            manager.installed_names(),
            manager.input_names()
        );
        println!(
            "degree rows: {} (every node has out-degree 3); 2-hop of node 7: {:?}",
            degrees.len(),
            two_hops
                .iter()
                .map(|(row, _)| row.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(degrees.len(), 1_000);
        assert_eq!(two_hops.len(), 5, "nodes 9..=13 are two hops from 7");

        // Retire a query through the same protocol; its dataflow leaves the scheduler
        // and its local input disappears with it.
        run(
            worker,
            &mut manager,
            Command::Uninstall {
                name: "two-hop".into(),
            },
        );
        println!(
            "after uninstall: installed {:?}, inputs {:?}",
            manager.installed_names(),
            manager.input_names()
        );
        assert_eq!(manager.installed_names(), vec!["degrees".to_string()]);
        assert_eq!(manager.input_names(), vec!["edges".to_string()]);
    });
}
