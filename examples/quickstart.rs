//! Quickstart: the paper's Figure 1 — interactive, incrementally maintained graph
//! reachability queries over a changing graph.
//!
//! Run with `cargo run --release --example quickstart`.

use shared_arrangements::prelude::*;

fn main() {
    execute(Config::new(1), |worker| {
        // Install the dataflow under a name: `query` holds (src, dst) pairs we want
        // answered, `edges` holds the graph; the output is the set of query pairs that
        // are reachable. (A named install can later be retired with
        // `worker.uninstall("reachability")`; see examples/shared_queries.rs for the
        // full catalog-based lifecycle.)
        let (mut query, mut edges, probe, answers) = worker.install("reachability", |builder| {
            let (query_in, query) = new_collection::<(u32, u32), isize>(builder);
            let (edges_in, edges) = new_collection::<(u32, u32), isize>(builder);

            let seeds = query.map(|(src, _)| (src, src)).distinct();
            let reached = seeds.iterate(|reach| {
                let edges = edges.enter();
                let seeds = seeds.enter();
                reach
                    .join_map(&edges, |_node, root, next| (*next, *root))
                    .concat(&seeds)
                    .distinct()
            });
            let answers = query
                .map(|(src, dst)| ((dst, src), ()))
                .semijoin(&reached.map(|(node, root)| (node, root)))
                .map(|((dst, src), ())| (src, dst));

            let probe = answers.probe();
            let captured = answers.capture();
            (query_in, edges_in, probe, captured)
        });

        // Epoch 0: a small graph and two queries.
        for edge in [(1, 2), (2, 3), (4, 5)] {
            edges.insert(edge);
        }
        query.insert((1, 3));
        query.insert((1, 5));
        edges.advance_to(1);
        query.advance_to(1);
        worker.step_while(|| probe.less_than(&query.time()));
        println!("after epoch 0: {:?}", answers.borrow());

        // Epoch 1: adding 3 -> 4 makes (1, 5) reachable; the output updates itself.
        edges.insert((3, 4));
        edges.advance_to(2);
        query.advance_to(2);
        worker.step_while(|| probe.less_than(&query.time()));
        println!("after adding 3->4: {:?}", answers.borrow());

        // Epoch 2: removing 2 -> 3 disconnects everything; both answers retract.
        edges.remove((2, 3));
        edges.advance_to(3);
        query.advance_to(3);
        worker.step_while(|| probe.less_than(&query.time()));
        println!("after removing 2->3: {:?}", answers.borrow());
    });
}
