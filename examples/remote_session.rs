//! The paper's interactive scenario over a *real socket*: a client installs §6.2
//! query classes against a running network server, poses updates, reads settled
//! answers, and retires queries — then the same command stream is replayed on an
//! in-process `Manager` to confirm the wire boundary changed nothing: byte-identical
//! settled results either way.
//!
//! This is `examples/plan_session.rs` with TCP in the middle: frames carry
//! `kpg_wire`-encoded `Command`s in and `Response`s out, a sequencer totally orders
//! the client streams, and every worker executes the same log.
//!
//! Run with `cargo run --release --example remote_session`.

use shared_arrangements::plan::{Command, Expr, Manager, Plan, ReduceKind, Row};
use shared_arrangements::prelude::*;
use shared_arrangements::server::{serve, Client, ServerConfig};

fn edge(src: u32, dst: u32) -> Row {
    vec![src.into(), dst.into()].into()
}

/// The session, as data: the command stream both sides of the comparison run.
fn session_commands() -> Vec<Command> {
    let mut commands = vec![Command::CreateInput {
        name: "edges".into(),
        key_arity: Some(1),
    }];
    for src in 0..1_000u32 {
        for offset in 1..=3u32 {
            commands.push(Command::Update {
                name: "edges".into(),
                row: edge(src, (src + offset) % 1_000),
                diff: 1,
            });
        }
    }
    // Query 1: out-degree counts, grouped by source.
    commands.push(Command::Install {
        name: "degrees".into(),
        plan: Plan::source("edges").reduce(1, ReduceKind::Count),
        locals: vec![],
    });
    // Query 2: the 2-hop neighbourhood of interactively posed roots, with `roots` a
    // query-local input.
    let two_hop = Plan::source("roots")
        .join(Plan::source("edges"), vec![(0, 0)]) // [root, mid]
        .join(Plan::source("edges"), vec![(1, 0)]) // [mid, root, dst]
        .map(vec![Expr::col(1), Expr::col(2)]) // [root, dst]
        .distinct();
    commands.push(Command::Install {
        name: "two-hop".into(),
        plan: two_hop,
        locals: vec!["roots".into()],
    });
    commands.push(Command::Update {
        name: "roots".into(),
        row: vec![7u32.into()].into(),
        diff: 1,
    });
    commands.push(Command::AdvanceTime { epoch: 1 });
    commands
}

/// A settled, consolidated query answer.
type Answer = Vec<(Row, isize)>;

/// Runs the command stream on an in-process `Manager` (no network), returning the two
/// settled query answers.
fn in_process_baseline() -> (Answer, Answer) {
    let mut results = execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        for command in session_commands() {
            manager.execute(worker, command).expect("session command");
        }
        manager.settle(worker);
        let degrees = manager.query("degrees").expect("degrees");
        let two_hops = manager.query("two-hop").expect("two-hop");
        (degrees, two_hops)
    });
    results.remove(0)
}

fn main() {
    // A real server on a real port, with two dataflow workers behind the sequencer.
    let mut server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind the query server");
    println!("serving on {} with 2 workers", server.local_addr());

    // Bounded waits everywhere: a wedged (or unreachable) server surfaces as a
    // ClientError::TimedOut instead of a hung example.
    let timeout = std::time::Duration::from_secs(30);
    let mut client = Client::connect_timeout(server.local_addr(), timeout)
        .expect("connect")
        .with_request_timeout(Some(timeout))
        .expect("set request timeout");
    // Pipeline the session in chunks of the server's in-flight bound: send a chunk of
    // frames, then collect its responses (the server answers strictly in order; past
    // PIPELINE_DEPTH unanswered commands it stops reading — backpressure).
    let commands = session_commands();
    for chunk in commands.chunks(shared_arrangements::server::PIPELINE_DEPTH) {
        for command in chunk {
            client.send(command).expect("send command");
        }
        for command in chunk {
            match client.receive().expect("session response") {
                shared_arrangements::wire::Response::Ok => {}
                other => panic!("command ({}) failed: {other:?}", command.kind()),
            }
        }
    }

    let degrees = client.query("degrees").expect("query degrees");
    let two_hops = client.query("two-hop").expect("query two-hop");
    println!(
        "over the socket: {} degree rows; 2-hop of node 7: {:?}",
        degrees.len(),
        two_hops
            .iter()
            .map(|(row, _)| row.clone())
            .collect::<Vec<_>>()
    );
    assert_eq!(degrees.len(), 1_000, "every node has out-degree 3");
    assert_eq!(two_hops.len(), 5, "nodes 9..=13 are two hops from 7");

    // The byte boundary must be invisible: the same command stream on an in-process
    // Manager returns the same settled answers, row for row.
    let (local_degrees, local_two_hops) = in_process_baseline();
    assert_eq!(degrees, local_degrees, "degrees diverge across the socket");
    assert_eq!(
        two_hops, local_two_hops,
        "two-hop diverges across the socket"
    );
    println!("socket answers == in-process answers (both queries)");

    // Retire a query through the same protocol, then confirm the retirement is
    // visible to a *different* connection.
    client.uninstall("two-hop").expect("uninstall");
    let mut other = Client::connect_timeout(server.local_addr(), timeout)
        .expect("second client")
        .with_request_timeout(Some(timeout))
        .expect("set request timeout");
    match other.query("two-hop") {
        Err(error) => assert_eq!(error.plan_code(), Some("unknown-query")),
        Ok(_) => panic!("two-hop should be gone"),
    }
    let still = other.query("degrees").expect("degrees still served");
    assert_eq!(still, degrees);
    println!("uninstall visible to other connections; degrees still served");

    server.shutdown();
}
