//! Inter-query sharing: one arrangement of a graph serves several query dataflows, and a
//! later dataflow attaches to the live arrangement via `import` (paper §4.3).
//!
//! Run with `cargo run --release --example shared_queries`.

use shared_arrangements::prelude::*;

fn main() {
    execute(Config::new(1), |worker| {
        // Dataflow 1: ingest the graph once and arrange it by source node.
        let (mut edges, probe, trace) = worker.dataflow(|builder| {
            let (edges_in, edges) = new_collection::<(u32, u32), isize>(builder);
            let arranged = edges.arrange_by_key();
            (edges_in, arranged.probe(), arranged.trace.clone())
        });
        for src in 0..1_000u32 {
            for offset in 1..=3u32 {
                edges.insert((src, (src + offset) % 1_000));
            }
        }
        edges.advance_to(1);
        worker.step_while(|| probe.less_than(&edges.time()));
        println!("arranged {} edge updates once", trace.len());

        // Dataflow 2: out-degree distribution, reading the shared arrangement.
        let (degree_probe, degrees) = worker.dataflow(|builder| {
            let imported = trace.import(builder);
            let degrees = imported
                .reduce_core("Degrees", |_k, input, output: &mut Vec<(isize, isize)>| {
                    let total: isize = input.iter().map(|(_, r)| *r).sum();
                    output.push((total, 1));
                })
                .as_collection(|node, degree| (*node, *degree));
            (degrees.probe(), degrees.capture())
        });

        // Dataflow 3: two-hop neighbourhood of a few roots, reading the same arrangement.
        let (mut roots, twohop_probe, twohop) = worker.dataflow(|builder| {
            let imported = trace.import(builder);
            let (roots_in, roots) = new_collection::<u32, isize>(builder);
            let one_hop = roots
                .map(|r| (r, ()))
                .arrange_by_key()
                .join_core(&imported, |root, (), mid| (*mid, *root));
            let two_hop = one_hop
                .arrange_by_key()
                .join_core(&imported, |_mid, root, dst| (*root, *dst));
            (roots_in, two_hop.probe(), two_hop.capture())
        });
        roots.insert(7);
        roots.advance_to(1);

        // Keep everything current; all three dataflows share the single arrangement.
        edges.advance_to(2);
        roots.advance_to(2);
        worker.step_while(|| {
            degree_probe.less_than(&edges.time()) || twohop_probe.less_than(&roots.time())
        });

        println!("degree rows maintained: {}", degrees.borrow().len());
        println!("two-hop results for root 7: {}", twohop.borrow().len());
        println!("graph is still held once: {} updates in the shared trace", trace.len());
    });
}
