//! The query-session lifecycle: one arrangement of a graph is published into the
//! `Catalog` by name, several queries are installed against it mid-stream, and one is
//! uninstalled at runtime — after which the shared trace's compaction frontier advances
//! past the departed reader (paper §4.3).
//!
//! Run with `cargo run --release --example shared_queries`.

use shared_arrangements::prelude::*;
use shared_arrangements::timestamp::Antichain;

fn main() {
    execute(Config::new(1), |worker| {
        let catalog = Catalog::new();

        // Dataflow 1: ingest the graph once, arrange it by source node, and publish the
        // arrangement under a name any later query can import.
        let (mut edges, probe) = worker.install("graph", {
            let catalog = catalog.clone();
            move |builder| {
                let (edges_in, edges) = new_collection::<(u32, u32), isize>(builder);
                let arranged = edges.arrange_by_key();
                catalog.publish_if_absent("edges", &arranged).unwrap();
                (edges_in, arranged.probe())
            }
        });
        for src in 0..1_000u32 {
            for offset in 1..=3u32 {
                edges.insert((src, (src + offset) % 1_000));
            }
        }
        edges.advance_to(1);
        worker.step_while(|| probe.less_than(&edges.time()));
        println!(
            "arranged {} edge updates once, published as {:?}",
            catalog.arrangement_size("edges").unwrap(),
            catalog.names()
        );

        // Query 1: out-degree distribution, installed against the published name.
        let degrees = worker
            .install_query("degrees", &catalog, |builder, catalog| {
                let imported = catalog
                    .import::<ValBatch<u32, u32>>("edges", builder)
                    .unwrap();
                let degrees = imported
                    .reduce_core("Degrees", |_k, input, output: &mut Vec<(isize, isize)>| {
                        let total: isize = input.iter().map(|(_, r)| *r).sum();
                        output.push((total, 1));
                    })
                    .as_collection(|node, degree| (*node, *degree));
                (degrees.probe(), degrees.capture())
            })
            .unwrap();

        // Query 2: two-hop neighbourhood of a few roots, importing the same arrangement.
        let twohop = worker
            .install_query("two-hop", &catalog, |builder, catalog| {
                let imported = catalog
                    .import::<ValBatch<u32, u32>>("edges", builder)
                    .unwrap();
                let (roots_in, roots) = new_collection::<u32, isize>(builder);
                let one_hop = roots
                    .map(|r| (r, ()))
                    .arrange_by_key()
                    .join_core(&imported, |root, (), mid| (*mid, *root));
                let two_hop = one_hop
                    .arrange_by_key()
                    .join_core(&imported, |_mid, root, dst| (*root, *dst));
                (roots_in, two_hop.probe(), two_hop.capture())
            })
            .unwrap();
        let (degree_probe, degree_rows) = &degrees.result;
        let (mut roots, twohop_probe, twohop_rows) = twohop.result;
        roots.insert(7);
        roots.advance_to(1);

        // Keep everything current; both queries share the single arrangement.
        edges.advance_to(2);
        roots.advance_to(2);
        worker.step_while(|| {
            degree_probe.less_than(&edges.time()) || twohop_probe.less_than(&roots.time())
        });
        println!(
            "installed queries: {:?}; degree rows: {}, two-hop rows for root 7: {}",
            worker.installed(),
            degree_rows.borrow().len(),
            twohop_rows.borrow().len()
        );
        println!(
            "shared trace before uninstall: {} updates, since = {:?}",
            catalog.arrangement_size("edges").unwrap(),
            catalog.since("edges").unwrap()
        );

        // Retire the degree query at runtime. Its dataflow leaves the scheduler and the
        // read frontiers it pinned are released; with the surviving readers advanced,
        // the shared trace is free to compact history only the departed query needed.
        assert!(worker.uninstall_query("degrees", &catalog));
        edges.advance_to(3);
        roots.advance_to(3);
        catalog.advance_all(Antichain::from_elem(Time::from_epoch(2)).borrow());
        worker.step_while(|| twohop_probe.less_than(&roots.time()));

        println!(
            "after uninstalling \"degrees\": installed queries = {:?}",
            worker.installed()
        );
        println!(
            "shared trace after uninstall: {} updates, since = {:?} (compaction advanced)",
            catalog.arrangement_size("edges").unwrap(),
            catalog.since("edges").unwrap()
        );
        assert!(
            !catalog
                .since("edges")
                .unwrap()
                .less_equal(&Time::from_epoch(1)),
            "the departed reader's history is released"
        );
    });
}
