#!/usr/bin/env python3
"""Validate the `BENCH {...}` JSON lines a benchmark binary printed.

Usage: check_bench.py <output-file> <required-name> [<required-name> ...]

Fails (exit 1) if any `BENCH ` line is not followed by a single valid JSON
object with a string `name` field, if any required name never appears, or if a
record of a known name is missing the keys its schema requires — so a refactor
that silently empties a record (a latency record without its percentiles, a
churn record without its steady-state step cost) breaks the build instead of
the perf trajectory. CI pipes each bench smoke run through a file and calls
this afterwards.
"""

import json
import sys

# Per-record required keys, by record name. Names absent from this table are
# only checked for basic shape (a JSON object with a string `name`).
SCHEMAS = {
    "churn": {
        "queries",
        "workers",
        "install_median_ns",
        "install_p99_ns",
        "step_median_ns_first_half",
        "step_median_ns_second_half",
        "steady_step_median_ns",
        "slot_high_water",
        "reader_slots_high_water",
    },
    # The plan-mode churn record must stay field-compatible with the closure
    # baseline so the two stay directly comparable.
    "churn_plan": {
        "queries",
        "workers",
        "install_median_ns",
        "install_p99_ns",
        "step_median_ns_first_half",
        "step_median_ns_second_half",
        "steady_step_median_ns",
        "slot_high_water",
        "reader_slots_high_water",
    },
    # Durable plan-mode churn: the plan fields plus the steady-state ratio against
    # the in-memory run — the durability acceptance number (must stay near 1x).
    "churn_plan_durable": {
        "queries",
        "workers",
        "install_median_ns",
        "install_p99_ns",
        "step_median_ns_first_half",
        "step_median_ns_second_half",
        "steady_step_median_ns",
        "memory_steady_step_median_ns",
        "steady_vs_memory_x",
        "step_vs_memory_x",
        "slot_high_water",
        "reader_slots_high_water",
    },
    # WAL throughput during the durable churn: logged volume and the per-epoch
    # group-commit (write + fsync) latency.
    "wal_append": {
        "bytes",
        "commits",
        "bytes_per_sec",
        "commit_p50_ns",
        "commit_p99_ns",
    },
    # Replaying the finished WAL into a fresh Manager: restart cost.
    "recovery_replay": {"commands", "elapsed_ns", "commands_per_sec"},
    "micro_latency": {"experiment", "workers", "load", "p50_ns", "p99_ns"},
    "micro_throughput": {"workers", "updates", "records_per_s"},
    "micro_join_install": {"keys", "size", "latency_us"},
    # The fault-injection sweep: every point must be answered without panics or
    # invariant violations, and heal latency (fault cleared -> read-write again)
    # is the robustness number being tracked.
    "chaos_sweep": {
        "seed",
        "steps",
        "fault_points",
        "exercised",
        "panics",
        "violations",
        "degraded_transitions",
        "heals",
        "heal_p50_ns",
        "heal_p99_ns",
    },
    # Per-command cost of the network boundary (codec + framing + sequencer +
    # all-worker execution, full loopback round trip) vs direct Manager::execute.
    # One point of the multi-client fan-out curve: N concurrent connections
    # against one reactor, single-update RTT percentiles across all of them plus
    # aggregate throughput. A flat rtt_p50_ns across clients is the event-driven
    # fabric's acceptance shape.
    "server_fanout": {
        "workers",
        "clients",
        "updates",
        "rtt_p50_ns",
        "rtt_p99_ns",
        "throughput_per_s",
        "durable",
    },
    "server_roundtrip": {
        "workers",
        "updates",
        "queries",
        "direct_update_p50_ns",
        "wire_update_p50_ns",
        "wire_update_p99_ns",
        "direct_query_p50_ns",
        "wire_query_p50_ns",
        "overhead_x",
        "durable",
    },
}


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    path, required = sys.argv[1], set(sys.argv[2:])

    seen = set()
    errors = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.startswith("BENCH "):
                continue
            body = line[len("BENCH "):].strip()
            try:
                record = json.loads(body)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: unparsable BENCH line: {exc}")
                continue
            if not isinstance(record, dict) or not isinstance(record.get("name"), str):
                errors.append(f"{path}:{lineno}: BENCH object lacks a string 'name'")
                continue
            name = record["name"]
            missing = SCHEMAS.get(name, set()) - record.keys()
            if missing:
                errors.append(
                    f"{path}:{lineno}: {name} record is missing required keys: "
                    + ", ".join(sorted(missing))
                )
                continue
            seen.add(name)
            print(f"ok: {path}:{lineno}: {name} ({len(record)} fields)")

    for name in sorted(required - seen):
        errors.append(f"{path}: required BENCH record {name!r} never emitted")

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
