#!/usr/bin/env python3
"""Validate the `BENCH {...}` JSON lines a benchmark binary printed.

Usage: check_bench.py <output-file> <required-name> [<required-name> ...]

Fails (exit 1) if any `BENCH ` line is not followed by a single valid JSON
object with a string `name` field, or if any required name never appears.
CI pipes each bench smoke run through a file and calls this afterwards, so a
refactor that silently drops or mangles the machine-readable perf record
breaks the build instead of the perf trajectory.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    path, required = sys.argv[1], set(sys.argv[2:])

    seen = set()
    errors = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.startswith("BENCH "):
                continue
            body = line[len("BENCH "):].strip()
            try:
                record = json.loads(body)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: unparsable BENCH line: {exc}")
                continue
            if not isinstance(record, dict) or not isinstance(record.get("name"), str):
                errors.append(f"{path}:{lineno}: BENCH object lacks a string 'name'")
                continue
            seen.add(record["name"])
            print(f"ok: {path}:{lineno}: {record['name']} ({len(record)} fields)")

    for name in sorted(required - seen):
        errors.append(f"{path}: required BENCH record {name!r} never emitted")

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
