//! # Shared Arrangements (K-Pg) — umbrella crate
//!
//! This crate re-exports the public API of the reproduction of *Shared Arrangements:
//! practical inter-query sharing for streaming dataflows* (VLDB 2020). The heavy lifting
//! lives in the workspace crates:
//!
//! * [`timestamp`] — partially ordered timestamps, lattices, antichains, compaction.
//! * [`trace`] — immutable indexed batches, cursors, and the amortized-merging spine
//!   that backs every arrangement.
//! * [`dataflow`] — the multi-worker dataflow runtime (workers, exchange channels,
//!   epoch/round-synchronous progress tracking), including the install/uninstall
//!   dataflow lifecycle.
//! * [`core`](mod@core) — differential collections, the `arrange` operator, the
//!   batch-oriented operator shells (`join`, `reduce`, `distinct`, `count`, `iterate`),
//!   and the [`Catalog`](kpg_core::Catalog) of named shared arrangements with the
//!   [`QueryLifecycle`](kpg_core::QueryLifecycle) install/uninstall API.
//! * [`plan`] — runtime query plans: the data-described `Plan` IR, the render pass
//!   onto shared arrangements, and the per-worker `Manager` command loop.
//! * [`wire`], [`server`] — the network boundary: the length-prefixed binary codec
//!   for `Command`/`Row`/`Response` and the multi-client TCP query server that
//!   sequences client streams into the managers (see `examples/remote_session.rs`).
//! * [`relational`], [`graph`], [`datalog`] — the workloads used by the paper's
//!   evaluation (TPC-H-like analytics, graph processing, Datalog / program analysis).
//!
//! ## The query-session API
//!
//! The paper's central claim is *interactive* sharing: new queries attach to
//! already-maintained indexes mid-stream, and retired queries release the index history
//! they alone were pinning. That loop is a first-class operation here:
//!
//! ```no_run
//! use shared_arrangements::prelude::*;
//!
//! execute(Config::new(1), |worker| {
//!     let catalog = Catalog::new();
//!
//!     // Ingest and arrange the data once; publish the arrangement by name.
//!     let (mut edges, probe) = worker.install("graph", {
//!         let catalog = catalog.clone();
//!         move |builder| {
//!             let (input, edges) = new_collection::<(u32, u32), isize>(builder);
//!             let arranged = edges.arrange_by_key();
//!             catalog.publish_if_absent("edges", &arranged).unwrap();
//!             (input, arranged.probe())
//!         }
//!     });
//!
//!     // Install a query against the published arrangement, by name.
//!     let degrees = worker
//!         .install_query("degrees", &catalog, |builder, catalog| {
//!             let edges = catalog
//!                 .import::<ValBatch<u32, u32>>("edges", builder)
//!                 .unwrap();
//!             edges.as_collection(|src, _dst| *src).probe()
//!         })
//!         .unwrap();
//!
//!     // ...run interactively (insert, advance_to, step_while)...
//!     let _ = (&mut edges, probe, degrees);
//!
//!     // Retire the query: its dataflow leaves the scheduler and its read frontiers
//!     // are released, so the shared arrangement can compact past them.
//!     worker.uninstall_query("degrees", &catalog);
//! });
//! ```
//!
//! The fastest way in is `examples/quickstart.rs` (the paper's Figure 1 reachability
//! dataflow, interactively updated) and `examples/shared_queries.rs` (the full
//! publish → install → uninstall lifecycle, with the compaction frontier visibly
//! advancing when a reader departs).

#![forbid(unsafe_code)]

pub use kpg_core as core;
pub use kpg_dataflow as dataflow;
pub use kpg_datalog as datalog;
pub use kpg_graph as graph;
pub use kpg_plan as plan;
pub use kpg_relational as relational;
pub use kpg_server as server;
pub use kpg_timestamp as timestamp;
pub use kpg_trace as trace;
pub use kpg_wire as wire;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use kpg_core::prelude::*;
    pub use kpg_dataflow::{execute, Config, InputHandle, ProbeHandle, Worker};
    pub use kpg_timestamp::{Antichain, Lattice, PartialOrder, Time, Timestamp};
}
