//! # Shared Arrangements (K-Pg) — umbrella crate
//!
//! This crate re-exports the public API of the reproduction of *Shared Arrangements:
//! practical inter-query sharing for streaming dataflows* (VLDB 2020). The heavy lifting
//! lives in the workspace crates:
//!
//! * [`timestamp`] — partially ordered timestamps, lattices, antichains, compaction.
//! * [`trace`] — immutable indexed batches, cursors, and the amortized-merging spine
//!   that backs every arrangement.
//! * [`dataflow`] — the multi-worker dataflow runtime (workers, exchange channels,
//!   epoch/round-synchronous progress tracking).
//! * [`core`](mod@core) — differential collections, the `arrange` operator, and the
//!   batch-oriented operator shells (`join`, `reduce`, `distinct`, `count`, `iterate`).
//! * [`relational`], [`graph`], [`datalog`] — the workloads used by the paper's
//!   evaluation (TPC-H-like analytics, graph processing, Datalog / program analysis).
//!
//! The fastest way to get started is the `examples/quickstart.rs` binary, which builds
//! the paper's reachability dataflow (Figure 1) and interactively updates it.

pub use kpg_core as core;
pub use kpg_dataflow as dataflow;
pub use kpg_datalog as datalog;
pub use kpg_graph as graph;
pub use kpg_relational as relational;
pub use kpg_timestamp as timestamp;
pub use kpg_trace as trace;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use kpg_core::prelude::*;
    pub use kpg_dataflow::{execute, Config, InputHandle, ProbeHandle, Worker};
    pub use kpg_timestamp::{Antichain, Lattice, PartialOrder, Time, Timestamp};
}
