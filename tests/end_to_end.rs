//! Cross-crate integration tests: the umbrella crate's public API driving workloads from
//! several domain crates in one computation.

use shared_arrangements::graph::algorithms::reachability;
use shared_arrangements::graph::{baseline, generate};
use shared_arrangements::prelude::*;

/// The differential reachability implementation agrees with the single-threaded BFS
/// baseline on a random graph, for one and for two workers.
#[test]
fn differential_reachability_matches_bfs_baseline() {
    let nodes = 300u32;
    let edges = generate::uniform(nodes, 900, 21);
    let root = 5u32;
    let mut expected = baseline::bfs_array(nodes, &edges, root);
    expected.sort_unstable();

    for workers in [1usize, 2] {
        let edges = edges.clone();
        let results = execute(Config::new(workers), move |worker| {
            let edges = edges.clone();
            let (mut edges_in, mut roots_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edge_coll) = new_collection::<(u32, u32), isize>(builder);
                let (roots_in, roots) = new_collection::<u32, isize>(builder);
                let reach = reachability(&edge_coll, &roots);
                (edges_in, roots_in, reach.probe(), reach.capture())
            });
            for (index, edge) in edges.iter().enumerate() {
                if index % worker.peers() == worker.index() {
                    edges_in.insert(*edge);
                }
            }
            if worker.index() == 0 {
                roots_in.insert(5);
            }
            edges_in.advance_to(1);
            roots_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let owned = cap.borrow().clone();
            owned
        });

        let mut reached: Vec<u32> = results
            .iter()
            .flatten()
            .filter(|(_, _, diff)| *diff > 0)
            .map(|((node, _root), _, _)| *node)
            .collect();
        reached.sort_unstable();
        reached.dedup();
        assert_eq!(reached, expected, "workers = {workers}");
    }
}

/// A shared arrangement built in one dataflow serves a query installed later in another,
/// and keeps serving it as the underlying collection changes.
#[test]
fn imported_arrangement_tracks_updates_across_dataflows() {
    let results = execute(Config::new(1), |worker| {
        let (mut edges, probe, trace) = worker.dataflow(|builder| {
            let (edges_in, edges) = new_collection::<(u32, u32), isize>(builder);
            let arranged = edges.arrange_by_key();
            (edges_in, arranged.probe(), arranged.trace)
        });
        for n in 0..50u32 {
            edges.insert((n % 10, n));
        }
        edges.advance_to(1);
        worker.step_while(|| probe.less_than(&edges.time()));

        // A later dataflow imports the arrangement and counts values per key.
        let (count_probe, counts) = worker.dataflow(|builder| {
            let imported = trace.import(builder);
            let counts = imported
                .reduce_core("Count", |_k, input, output: &mut Vec<(isize, isize)>| {
                    output.push((input.iter().map(|(_, r)| *r).sum(), 1));
                })
                .as_collection(|k, c| (*k, *c));
            (counts.probe(), counts.capture())
        });
        worker.step_while(|| count_probe.less_than(&edges.time()));

        // Update the original input; the imported dataflow follows.
        edges.insert((3, 999));
        edges.advance_to(2);
        worker.step_while(|| count_probe.less_than(&edges.time()));
        let owned = counts.borrow().clone();
        owned
    });

    use kpg_timestamp::PartialOrder;
    let accumulate = |epoch: u64| {
        let mut map = std::collections::BTreeMap::new();
        for ((key, count), time, diff) in results[0].iter() {
            if time.less_equal(&Time::from_epoch(epoch)) {
                *map.entry((*key, *count)).or_insert(0isize) += diff;
            }
        }
        map.retain(|_, v| *v != 0);
        map
    };
    let before = accumulate(0);
    let after = accumulate(1);
    assert_eq!(before.get(&(3, 5)), Some(&1), "5 values per key initially");
    assert_eq!(
        after.get(&(3, 6)),
        Some(&1),
        "key 3 gains a value at epoch 1"
    );
    assert_eq!(after.get(&(3, 5)), None);
}

/// The Datalog transitive closure and the graph reachability implementation agree on the
/// set of nodes reachable from a chosen source.
#[test]
fn datalog_and_graph_crates_agree() {
    use shared_arrangements::datalog::programs::tc_from;
    let edges = generate::uniform(120, 360, 33);
    let expected: std::collections::BTreeSet<u32> = {
        let mut reached = baseline::bfs_hashmap(&edges, 7);
        reached.sort_unstable();
        reached.into_iter().filter(|n| *n != 7).collect()
    };
    let edges_for_flow = edges;
    let results = execute(Config::new(1), move |worker| {
        let edges = edges_for_flow.clone();
        let (mut edges_in, mut seeds_in, probe, cap) = worker.dataflow(|builder| {
            let (edges_in, edge_coll) = new_collection::<(u32, u32), isize>(builder);
            let (seeds_in, seeds) = new_collection::<u32, isize>(builder);
            let closure = tc_from(&edge_coll, &seeds);
            (edges_in, seeds_in, closure.probe(), closure.capture())
        });
        for e in edges {
            edges_in.insert(e);
        }
        seeds_in.insert(7);
        edges_in.advance_to(1);
        seeds_in.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
        let owned = cap.borrow().clone();
        owned
    });
    // Whether the source itself appears depends on it lying on a cycle, which the plain
    // BFS baseline does not report; compare the two sets away from the source.
    let reached: std::collections::BTreeSet<u32> = results[0]
        .iter()
        .filter(|(_, _, d)| *d > 0)
        .map(|((_, node), _, _)| *node)
        .filter(|node| *node != 7)
        .collect();
    assert_eq!(reached, expected);
}
